#ifndef KJOIN_CORE_KJOIN_INDEX_H_
#define KJOIN_CORE_KJOIN_INDEX_H_

// Knowledge-aware similarity *search*: index a collection once (and grow
// it incrementally), then answer per-object queries.
//
// The paper's related work (§2.3) distinguishes joins from searches; the
// same signature machinery supports both. KJoinIndex stores every indexed
// object's FULL signature set in an inverted index; a query probes with
// its own prefix only. That asymmetry keeps the index insertable and the
// search complete: if a τ-similar indexed object shared no signature with
// the query's prefix, all its common signatures would sit in the query's
// suffix — which the prefix rules cap below the τ requirement.
//
//   KJoinIndex index(tree, options, objects);
//   index.Insert(more_objects[i]);
//   std::vector<SearchHit> hits = index.Search(query);
//
// Delta layering (the serving write path): a KJoinIndex built over a
// shared_ptr base stores only its own objects and postings; probes merge
// the chain's posting lists at query time, so publishing an update epoch
// costs O(batch), not O(index) (serve/index_manager.h folds deep chains
// back into a flat base via Flatten()). Tombstones make objects
// deletable anywhere in the chain without touching the layers below:
// object indexes are never reused, deleted entries are skipped at probe
// time and dropped when the chain is flattened.
//
// Thread safety: Search and SearchTopK are safe for any number of
// concurrent callers — every mutable state they touch (verifier scratch,
// SimCache L1, the last_candidates observability slot) is per-thread, and
// concurrent results are identical to serial execution. Insert and
// DeleteObject mutate the index and require external synchronization: no
// Search may run concurrently with them (serve/index_manager.h never
// mutates a published index; it layers a delta over it instead). A base
// an immutable delta chain is built over must no longer be mutated.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/kjoin.h"
#include "core/posting_store.h"
#include "core/verifier.h"

namespace kjoin {

struct SearchHit {
  int32_t object_index = -1;  // position in the indexed collection
  double similarity = 0.0;

  friend bool operator==(const SearchHit&, const SearchHit&) = default;
};

// Hit ordering used by every search entry point, total so concurrent and
// sharded executions re-rank reproducibly: similarity descending, then
// object index ascending. (KOIOS-style progressive top-k and the serving
// router's gather both rely on the order being a strict total order.)
inline bool HitBefore(const SearchHit& a, const SearchHit& b) {
  if (a.similarity != b.similarity) return a.similarity > b.similarity;
  return a.object_index < b.object_index;
}

// A monotonically-tightening similarity floor shared by the probes of one
// logical top-k query (the scatter-gather serving path fans a query to
// every shard and hands them all one bound). Each probe reports its own
// running k-th-best similarity through Tighten(); every probe polls
// value() to skip candidates — and whole prefix posting lists — that can
// no longer place in the global top-k.
//
// Soundness: a probe only offers the k-th best of the hits it has itself
// verified, and any subset's k-th best is <= the full result's k-th best,
// so value() never exceeds the final k-th-best similarity. Probes prune
// strictly below value() minus a float-safety slack, so ties survive and
// the merged top-k is byte-identical to a single-index search (see
// docs/serving.md, "Progressive τ contract").
//
// Lock-free: similarities are non-negative IEEE doubles, whose bit
// patterns order like the values, so the fetch-max is a CAS loop over one
// atomic uint64. Relaxed ordering suffices — the bound is a monotone
// hint, and every use tolerates a stale read.
class SearchBound {
 public:
  explicit SearchBound(double floor = 0.0) : bits_(Encode(floor)) {}

  // The current floor (never decreases).
  double value() const { return Decode(bits_.load(std::memory_order_relaxed)); }

  // Raises the bound to at least `similarity`; returns true when this
  // call advanced it.
  bool Tighten(double similarity) {
    const uint64_t proposed = Encode(similarity);
    uint64_t current = bits_.load(std::memory_order_relaxed);
    while (proposed > current) {
      if (bits_.compare_exchange_weak(current, proposed, std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

 private:
  static uint64_t Encode(double v) {
    if (v < 0.0) v = 0.0;  // similarities are non-negative; clamp sentinels
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
  }
  static double Decode(uint64_t bits) {
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::atomic<uint64_t> bits_;
};

// Per-call observability for the controlled Search overloads. The bound_*
// counters are only touched by the progressive SearchTopK overload: they
// record how often this probe advanced the shared bound and how much
// probe/verify work the tightened bound let it skip.
struct SearchStats {
  int64_t candidates = 0;
  // Tighten() calls that advanced the shared bound.
  int64_t bound_tightenings = 0;
  // Prefix posting lists never probed because the risen bound shortened
  // the prefix, the entries those lists held, and the posting blocks the
  // skip saved decoding.
  int64_t bound_pruned_lists = 0;
  int64_t bound_pruned_entries = 0;
  int64_t bound_pruned_blocks = 0;
  // Verifications that ran at a threshold above the index's configured
  // tau (each rejects earlier than a tau-level verification would).
  int64_t bound_raised_verifies = 0;
  // Candidates dropped before verification because their sizes cannot
  // reach the current bound: fuzzy overlap is a matching with per-pair
  // weights <= 1, so it never exceeds min(|x|, |y|); when the overlap the
  // bound demands is above that, VerifyAt could only reject.
  int64_t bound_skipped_verifies = 0;
  VerifyStats verify;
};

class KJoinIndex {
 public:
  // Copies `objects` into the index (it owns its collection so that
  // Insert can grow it). The hierarchy must outlive the index. Options
  // are interpreted as for KJoin; verify_mode/prunings control how
  // candidates are checked at query time.
  KJoinIndex(const Hierarchy& hierarchy, KJoinOptions options, std::vector<Object> objects);

  // Snapshot/clone adoption: the inverted index and the LCA tables are
  // supplied instead of being re-derived from `objects` (serve/snapshot.h
  // restores them from disk; serve/index_manager.h shares them across
  // epochs). `lca` may be shared between indexes over the same hierarchy;
  // `postings` is the frozen CSR store holding exactly the posting lists
  // IndexObject would build; `tombstones` are the deleted object indexes
  // (sorted or not).
  struct RestoredParts {
    std::shared_ptr<const LcaIndex> lca;  // null = build from the hierarchy
    PostingStore postings;
    std::vector<int32_t> tombstones;
  };
  KJoinIndex(const Hierarchy& hierarchy, KJoinOptions options, std::vector<Object> objects,
             RestoredParts parts);

  // Delta layer: an initially-empty index over `base` (which must no
  // longer be mutated). Shares the base's hierarchy, options and LCA
  // tables; Insert/DeleteObject touch only this layer, searches see the
  // whole chain. Object indexes continue the base's numbering.
  explicit KJoinIndex(std::shared_ptr<const KJoinIndex> base);

  // Appends one object; it becomes immediately searchable. Returns its
  // (chain-global) index. NOT safe to call concurrently with Search (see
  // header).
  int32_t Insert(const Object& object);

  // Tombstones an object anywhere in the chain: it stops matching
  // queries immediately and is dropped by the next Flatten(). Idempotent
  // — returns false when the object was already deleted. `index` must be
  // in [0, num_indexed()). NOT safe to call concurrently with Search.
  bool DeleteObject(int32_t index);

  // All indexed objects with SIMδ(query, object) >= τ, sorted by the
  // documented total order (HitBefore: similarity descending, ties by
  // ascending object index). The query must come from the same
  // ObjectBuilder as the indexed collection.
  std::vector<SearchHit> Search(const Object& query) const;

  // The top-k most similar indexed objects with SIMδ >= min_similarity
  // (which must be >= the index's τ), in HitBefore order; the total
  // order makes the k-th cut reproducible even through similarity ties.
  // k <= 0 returns everything.
  std::vector<SearchHit> SearchTopK(const Object& query, int32_t k,
                                    double min_similarity) const;

  // Controlled entry points (serving path). With a default JoinControl
  // they compute the same hits as the overloads above and return OK. The
  // deadline and cancel token are polled between verifications; on a trip
  // (kDeadlineExceeded / kCancelled) *hits holds the similar objects
  // proven so far, sorted — and for SearchTopK still filtered to
  // min_similarity and truncated to k. The byte-budget fields of JoinControl do not
  // apply to a single-probe search and are ignored. Unlike SearchTopK —
  // whose threshold violation is a programming error and CHECKs — the
  // controlled variant treats min_similarity < τ as untrusted input and
  // returns kInvalidArgument.
  Status Search(const Object& query, const JoinControl& control,
                std::vector<SearchHit>* hits, SearchStats* stats = nullptr) const;
  Status SearchTopK(const Object& query, int32_t k, double min_similarity,
                    const JoinControl& control, std::vector<SearchHit>* hits,
                    SearchStats* stats = nullptr) const;

  // Progressive top-k (the scatter-gather serving path). Identical hits
  // to the overload above, but `bound` — a shared, monotonically-
  // tightening similarity floor, possibly advanced concurrently by other
  // probes of the same logical query — lets the probe skip work that can
  // no longer place in the final top-k:
  //  - the signature prefix is recomputed at the risen bound, so whole
  //    posting lists (and their blocks) are never probed;
  //  - candidates verify at max(τ, bound - slack), so the count-pruning
  //    and adaptive bounds reject earlier;
  //  - once this probe holds k hits it reports its running k-th best
  //    back through Tighten().
  // A null `bound` behaves exactly like the plain overload. Hits with
  // similarity >= the final k-th best are never pruned (the slack keeps
  // ties float-safe), so results — including tie-break order — match the
  // non-progressive path byte for byte. The bound's floor should be the
  // caller's min_similarity (lower floors are sound, just less pruned).
  Status SearchTopK(const Object& query, int32_t k, double min_similarity,
                    const JoinControl& control, SearchBound* bound,
                    std::vector<SearchHit>* hits, SearchStats* stats = nullptr) const;

  // Candidate count of the last Search executed by the calling thread
  // (observability for benches; the slot is thread-local, shared by all
  // indexes the thread searches).
  static int64_t last_candidates();

  // Objects ever indexed across the chain, deleted ones included (object
  // indexes are stable, never compacted away while the chain lives).
  int64_t num_indexed() const {
    return base_total_ + static_cast<int64_t>(objects_.size());
  }
  // num_indexed() minus tombstoned objects.
  int64_t num_live() const { return num_indexed() - total_dead_; }
  // Whether `index` is tombstoned in this layer or any layer below.
  bool deleted(int32_t index) const {
    for (const KJoinIndex* layer = this; layer != nullptr; layer = layer->base_.get()) {
      if (layer->dead_.find(index) != layer->dead_.end()) return true;
      // The owning layer reached: deeper layers predate the object.
      if (index >= layer->base_total_) return false;
    }
    return false;
  }
  const Object& object_at(int32_t index) const {
    const KJoinIndex* layer = this;
    while (index < layer->base_total_) layer = layer->base_.get();
    return layer->objects_[index - layer->base_total_];
  }
  // Objects stored by THIS layer only (the full collection for a flat
  // index; the tail past the base for a delta). Snapshot writers flatten
  // first (see Flatten).
  const std::vector<Object>& objects() const { return objects_; }
  const KJoinOptions& options() const { return options_; }
  const Hierarchy& hierarchy() const { return *hierarchy_; }

  // Delta-chain observability: 0 for a flat index, layers above the
  // flat base otherwise.
  int delta_depth() const { return depth_; }
  const std::shared_ptr<const KJoinIndex>& base() const { return base_; }

  // Collapses the chain into flat parts: the full object collection
  // (dead objects kept in place so indexes stay stable), merged postings
  // re-frozen into one CSR store with tombstoned entries dropped, and the
  // union of tombstones sorted ascending. Feeding the results to the
  // RestoredParts constructor yields a flat index that answers every
  // query identically — no signature regeneration, O(total postings)
  // work.
  void Flatten(std::vector<Object>* objects, RestoredParts* parts) const;

  // Posting entries stored by THIS layer (frozen + mutable tail). The
  // serving layer sizes epochs by this; benches report it.
  int64_t posting_entries() const { return store_.num_entries() + tail_entries_; }

  // This layer's frozen CSR store (empty for delta layers, which keep
  // their postings in the mutable tail until a Flatten/compaction).
  const PostingStore& packed_postings() const { return store_; }

  // Calls fn(SigId, const int32_t* docs, int32_t count) for every posting
  // list of THIS layer in ascending SigId order, frozen store and mutable
  // tail merged (tail entries follow store entries; both halves ascend,
  // so the combined list is ascending). The pointer is only valid during
  // the call. This is the snapshot writer's traversal: SigId-sorted
  // without building a map copy.
  template <typename Fn>
  void ForEachPosting(Fn&& fn) const {
    std::vector<std::pair<SigId, const std::vector<int32_t>*>> tail_sorted;
    tail_sorted.reserve(tail_.size());
    for (const auto& [id, list] : tail_) tail_sorted.emplace_back(id, &list);
    std::sort(tail_sorted.begin(), tail_sorted.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::vector<int32_t> scratch;
    size_t t = 0;
    for (int32_t slot = 0; slot < store_.num_lists(); ++slot) {
      const SigId id = store_.key(slot);
      // Tail-only signatures below this store key first.
      for (; t < tail_sorted.size() && tail_sorted[t].first < id; ++t) {
        fn(tail_sorted[t].first, tail_sorted[t].second->data(),
           static_cast<int32_t>(tail_sorted[t].second->size()));
      }
      const int32_t n = store_.length(slot);
      const std::vector<int32_t>* extra =
          (t < tail_sorted.size() && tail_sorted[t].first == id) ? tail_sorted[t].second
                                                                 : nullptr;
      scratch.resize(static_cast<size_t>(n) + (extra != nullptr ? extra->size() : 0));
      store_.Decode(slot, scratch.data());
      if (extra != nullptr) {
        std::copy(extra->begin(), extra->end(), scratch.begin() + n);
        ++t;
      }
      fn(id, scratch.data(), static_cast<int32_t>(scratch.size()));
    }
    for (; t < tail_sorted.size(); ++t) {
      fn(tail_sorted[t].first, tail_sorted[t].second->data(),
         static_cast<int32_t>(tail_sorted[t].second->size()));
    }
  }

  std::shared_ptr<const LcaIndex> shared_lca() const { return lca_; }

 private:
  // Signature-prefix probe. With a non-null `bound`, the prefix length is
  // re-derived from the bound's current value before each posting list;
  // lists past the tightened prefix are skipped and accounted in `stats`
  // (both may be null).
  std::vector<int32_t> Candidates(const Object& query, SearchBound* bound,
                                  SearchStats* stats) const;
  std::vector<int32_t> Candidates(const Object& query) const {
    return Candidates(query, nullptr, nullptr);
  }
  // The progressive verify loop behind the SearchBound overload: local
  // top-k heap in HitBefore order, thresholds raised as `bound` tightens.
  Status SearchTopKProgressive(const Object& query, int32_t k, double min_similarity,
                               const JoinControl& control, SearchBound* bound,
                               std::vector<SearchHit>* hits, SearchStats* stats) const;
  void IndexObject(int32_t index);
  // Moves the mutable tail into the frozen CSR store (only legal while
  // the store is empty — the flat build path).
  void FreezeTail();
  void CollectLayers(std::vector<const KJoinIndex*>* layers) const;
  Status SearchControlled(const Object& query, const JoinControl& control,
                          std::vector<SearchHit>* hits, SearchStats* stats) const;

  const Hierarchy* hierarchy_;
  KJoinOptions options_;
  // This layer's objects; chain-global index = base_total_ + local slot.
  std::vector<Object> objects_;
  // Delta layering: null base_ = flat index. base_total_ caches the
  // base's num_indexed() (fixed — a layered-over base is immutable);
  // depth_ counts layers above the flat root; dead_ holds the indexes
  // THIS layer tombstoned; total_dead_ the chain-wide count.
  std::shared_ptr<const KJoinIndex> base_;
  int32_t base_total_ = 0;
  int depth_ = 0;
  int64_t total_dead_ = 0;
  std::unordered_set<int32_t> dead_;
  // Shared so snapshot restores and epoch clones reuse one table.
  std::shared_ptr<const LcaIndex> lca_;
  // Declared before element_sim_, which captures the raw pointer (null
  // when options_.sim_cache is off).
  std::unique_ptr<SimCache> sim_cache_;
  ElementSimilarity element_sim_;
  SignatureGenerator signatures_;
  ObjectSimilarity object_sim_;
  Verifier verifier_;
  // signature -> objects of THIS layer carrying it (full sets,
  // deduplicated per object, chain-global indexes). The chain-summed
  // list length doubles as the signature's document frequency for
  // ordering query prefixes. Frozen lists live in the CSR store; objects
  // inserted after the freeze go to the mutable tail (their indexes are
  // strictly above everything frozen, so per-signature the concatenation
  // store-then-tail stays ascending). Delta layers are tail-only.
  PostingStore store_;
  std::unordered_map<SigId, std::vector<int32_t>> tail_;
  int64_t tail_entries_ = 0;
};

}  // namespace kjoin

#endif  // KJOIN_CORE_KJOIN_INDEX_H_
