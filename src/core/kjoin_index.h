#ifndef KJOIN_CORE_KJOIN_INDEX_H_
#define KJOIN_CORE_KJOIN_INDEX_H_

// Knowledge-aware similarity *search*: index a collection once (and grow
// it incrementally), then answer per-object queries.
//
// The paper's related work (§2.3) distinguishes joins from searches; the
// same signature machinery supports both. KJoinIndex stores every indexed
// object's FULL signature set in an inverted index; a query probes with
// its own prefix only. That asymmetry keeps the index insertable and the
// search complete: if a τ-similar indexed object shared no signature with
// the query's prefix, all its common signatures would sit in the query's
// suffix — which the prefix rules cap below the τ requirement.
//
//   KJoinIndex index(tree, options, objects);
//   index.Insert(more_objects[i]);
//   std::vector<SearchHit> hits = index.Search(query);

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/kjoin.h"
#include "core/verifier.h"

namespace kjoin {

struct SearchHit {
  int32_t object_index = -1;  // position in the indexed collection
  double similarity = 0.0;

  friend bool operator==(const SearchHit&, const SearchHit&) = default;
};

class KJoinIndex {
 public:
  // Copies `objects` into the index (it owns its collection so that
  // Insert can grow it). The hierarchy must outlive the index. Options
  // are interpreted as for KJoin; verify_mode/prunings control how
  // candidates are checked at query time.
  KJoinIndex(const Hierarchy& hierarchy, KJoinOptions options, std::vector<Object> objects);

  // Appends one object; it becomes immediately searchable. Returns its
  // index.
  int32_t Insert(const Object& object);

  // All indexed objects with SIMδ(query, object) >= τ, sorted by
  // descending similarity (ties: ascending index). The query must come
  // from the same ObjectBuilder as the indexed collection.
  std::vector<SearchHit> Search(const Object& query) const;

  // The top-k most similar indexed objects with SIMδ >= min_similarity
  // (which must be >= the index's τ). k <= 0 returns everything.
  std::vector<SearchHit> SearchTopK(const Object& query, int32_t k,
                                    double min_similarity) const;

  // Candidate count of the last Search on this thread (observability for
  // benches; not synchronized across threads).
  int64_t last_candidates() const { return last_candidates_; }

  int64_t num_indexed() const { return static_cast<int64_t>(objects_.size()); }
  const Object& object_at(int32_t index) const { return objects_[index]; }
  const KJoinOptions& options() const { return options_; }

 private:
  std::vector<int32_t> Candidates(const Object& query) const;
  void IndexObject(int32_t index);

  const Hierarchy* hierarchy_;
  KJoinOptions options_;
  std::vector<Object> objects_;
  LcaIndex lca_;
  // Declared before element_sim_, which captures the raw pointer (null
  // when options_.sim_cache is off).
  std::unique_ptr<SimCache> sim_cache_;
  ElementSimilarity element_sim_;
  SignatureGenerator signatures_;
  ObjectSimilarity object_sim_;
  Verifier verifier_;
  // signature -> indexed objects carrying it (full sets, deduplicated per
  // object). The list length doubles as the signature's document
  // frequency for ordering query prefixes.
  std::unordered_map<SigId, std::vector<int32_t>> postings_;
  mutable int64_t last_candidates_ = 0;
};

}  // namespace kjoin

#endif  // KJOIN_CORE_KJOIN_INDEX_H_
