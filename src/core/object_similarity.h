#ifndef KJOIN_CORE_OBJECT_SIMILARITY_H_
#define KJOIN_CORE_OBJECT_SIMILARITY_H_

// Knowledge-aware object similarity (paper Definition 2 and §6.3).
//
// SIMδ(Sx, Sy) combines the fuzzy overlap ‖Sx ∩̃δ Sy‖ — the maximum-weight
// matching of the δ-thresholded element bigraph — with a set-similarity
// scheme. Jaccard is the paper's default; Dice and Cosine follow §6.3.

#include <cstdint>

#include "core/element_similarity.h"
#include "core/object.h"
#include "matching/bigraph.h"

namespace kjoin {

enum class SetMetric {
  kJaccard,  //  o / (|Sx| + |Sy| − o)
  kDice,     //  2o / (|Sx| + |Sy|)
  kCosine,   //  o / sqrt(|Sx| · |Sy|)
};

// τ_S: any object τ-similar to S shares at least this many δ-similar
// elements with it (integral because matched element pairs are counted).
// Jaccard: ⌈τ|S|⌉; Dice: ⌈τ/(2−τ)·|S|⌉; Cosine: ⌈τ²|S|⌉.
int32_t MinSimilarElements(int32_t size, double tau, SetMetric metric);

// Real-valued version of the bound above: the minimum fuzzy overlap any
// τ-similar partner must reach with an object of this size. This is the
// weighted path prefix's removal budget (Definition 9 uses τ|S|, the
// Jaccard instance).
double MinOverlapWithAnyPartner(int32_t size, double tau, SetMetric metric);

// τ_{Sx,Sy}: the minimum fuzzy overlap implied by SIMδ >= τ. Kept
// real-valued: the paper writes ⌈·⌉, which is only sound for integral
// overlaps; the fuzzy overlap is fractional, so rounding up here could
// prune true results.
double MinFuzzyOverlap(int32_t size_x, int32_t size_y, double tau, SetMetric metric);

// Folds an overlap into the final similarity value.
double CombineOverlap(double overlap, int32_t size_x, int32_t size_y, SetMetric metric);

// Exact (verification-free) object similarity: builds the full bigraph and
// runs the Hungarian algorithm. This is the semantics every filter and
// bound in the library is tested against.
class ObjectSimilarity {
 public:
  ObjectSimilarity(const ElementSimilarity& element_sim, double delta,
                   SetMetric metric = SetMetric::kJaccard);

  // The δ-thresholded weighted bigraph between the two element sets.
  Bigraph BuildBigraph(const Object& x, const Object& y) const;

  // Same, into a caller-owned graph (Reset + refill, keeping capacity) —
  // the verifier hot path reuses one graph per thread.
  void BuildBigraph(const Object& x, const Object& y, Bigraph* graph) const;

  // ‖Sx ∩̃δ Sy‖.
  double FuzzyOverlap(const Object& x, const Object& y) const;

  double Similarity(const Object& x, const Object& y) const;

  double delta() const { return delta_; }
  SetMetric set_metric() const { return metric_; }
  const ElementSimilarity& element_similarity() const { return *element_sim_; }

 private:
  const ElementSimilarity* element_sim_;
  double delta_;
  SetMetric metric_;
};

}  // namespace kjoin

#endif  // KJOIN_CORE_OBJECT_SIMILARITY_H_
