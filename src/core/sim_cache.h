#ifndef KJOIN_CORE_SIM_CACHE_H_
#define KJOIN_CORE_SIM_CACHE_H_

// Pair-similarity cache (docs/performance.md).
//
// Real joins evaluate the same element pairs across thousands of
// candidate object pairs. SimCache memoizes pair -> similarity under two
// disjoint key spaces: node pairs (a NodeSim is an RMQ plus two depth
// lookups) and token-id pairs (a plus-mode element Sim is a whole
// mapping-pair loop of NodeSims), so the hot path becomes mostly one
// array probe. Two levels:
//
//   L1 — a small direct-mapped (key, value) array living in thread-local
//        storage: no locks, no atomics on the lookup path. A thread's L1
//        belongs to one SimCache at a time (identified by a process-unique
//        id, never a reused pointer) and is invalidated wholesale when the
//        thread first touches a different cache.
//   L2 — a shared open-addressing table split into stripes, each stripe a
//        power-of-two slot array. Reads are lock-free (atomic loads plus a
//        key re-validation; see LookupL2); only inserts take the stripe's
//        write mutex. Bounded linear probing; a full neighborhood
//        overwrites (it is a cache, not a map).
//
// Determinism invariant: the cached value for a key is a pure function of
// the key (the hierarchy is immutable for the cache's lifetime), so hits
// return bit-identical doubles to recomputation, whatever thread inserted
// them, and join results are byte-identical with the cache on or off.
// Eviction and racing inserts only ever change hit rates, never values.
//
// Thread safety: all methods may be called concurrently. stats() values
// lag per-thread L1 hit counters only by the relaxed-atomic visibility of
// the counting thread. Callers must stop using the cache before it is
// destroyed (same contract as every other join component).

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "hierarchy/hierarchy.h"

namespace kjoin {

struct SimCacheStats {
  int64_t l1_hits = 0;
  int64_t l2_hits = 0;
  int64_t misses = 0;  // lookups that fell through to compute()

  int64_t hits() const { return l1_hits + l2_hits; }
  int64_t lookups() const { return hits() + misses; }
  double HitRate() const {
    const int64_t total = lookups();
    return total > 0 ? static_cast<double>(hits()) / static_cast<double>(total) : 0.0;
  }
};

class SimCache {
 public:
  // `capacity` is the approximate number of L2 slots; it is rounded up to
  // a power of two per stripe. Requires capacity > 0.
  explicit SimCache(int64_t capacity);
  ~SimCache();

  SimCache(const SimCache&) = delete;
  SimCache& operator=(const SimCache&) = delete;

  // Canonical symmetric key: NodeSim(x, y) == NodeSim(y, x).
  static uint64_t Key(NodeId x, NodeId y) {
    const auto a = static_cast<uint64_t>(static_cast<uint32_t>(x < y ? x : y));
    const auto b = static_cast<uint64_t>(static_cast<uint32_t>(x < y ? y : x));
    return (a << 32) | b;
  }

  // Canonical symmetric key for a token-id pair, disjoint from every node
  // key (bit 63 set; node ids stay below 2^31, so node keys keep it
  // clear) and from the vacant-slot sentinel (token ids below 2^31 keep
  // bit 31 clear, so the low word is never all-ones). Used to memoize
  // whole-element Sim in plus mode, where equal token ids imply equal
  // mapping sets (ObjectBuilder interning guarantees this).
  static uint64_t TokenKey(int32_t x, int32_t y) {
    const auto a = static_cast<uint64_t>(static_cast<uint32_t>(x < y ? x : y));
    const auto b = static_cast<uint64_t>(static_cast<uint32_t>(x < y ? y : x));
    return (uint64_t{1} << 63) | (a << 32) | b;
  }

  // The cached similarity of (x, y), calling `compute` (a pure function of
  // the pair) on a miss and remembering its result.
  //
  // The hit path is deliberately frugal — the uncached computation it
  // replaces is itself only a handful of loads and one divide, so every
  // instruction here shows up in join time: one multiply for the hash
  // (Fibonacci hashing; the top bits are the best-mixed), one interleaved
  // key+value entry (a single cache line, where split arrays would touch
  // two), and a relaxed load/store pair instead of an atomic RMW for the
  // hit counter (the counter slot is effectively thread-private).
  template <typename ComputeFn>
  double GetOrCompute(NodeId x, NodeId y, const ComputeFn& compute) const {
    return GetOrComputeKey(Key(x, y), compute);
  }

  // As GetOrCompute, for a key already packed by Key() or TokenKey().
  // `compute` must be a pure function of the key.
  template <typename ComputeFn>
  double GetOrComputeKey(uint64_t key, const ComputeFn& compute) const {
    const uint64_t hash = key * kHashMul;
    L1Block& l1 = LocalL1();
    L1Entry& entry = l1.entries[hash >> (64 - kL1SlotBits)];
    if (entry.key == key) {
      l1.hit_counter->store(l1.hit_counter->load(std::memory_order_relaxed) + 1,
                            std::memory_order_relaxed);
      return entry.value;
    }
    double value;
    if (!LookupL2(key, &value)) {
      value = compute();
      InsertL2(key, value);
    }
    entry.key = key;
    entry.value = value;
    return value;
  }

  // Cumulative since construction. Snapshot before/after a region and
  // subtract, as with ThreadPool::stats().
  SimCacheStats stats() const;

  int64_t capacity() const;

  // Direct-mapped thread-local L1 size (per thread: 64 KiB).
  static constexpr int kL1SlotBits = 12;
  static constexpr size_t kL1Slots = size_t{1} << kL1SlotBits;

 private:
  struct L1Entry {
    uint64_t key;
    double value;
  };

  // One thread's L1. Only the owning thread reads or writes entries;
  // hit_counter points at a slot inside the owning SimCache so stats never
  // have to walk other threads' storage. Constant-initializable on purpose:
  // the thread_local needs no init guard on the lookup path.
  struct L1Block {
    uint64_t owner_id = 0;  // process-unique SimCache id; 0 = unclaimed
    std::atomic<int64_t>* hit_counter = nullptr;
    L1Entry entries[kL1Slots];
  };

  static constexpr uint64_t kHashMul = 0x9e3779b97f4a7c15ULL;  // 2^64 / phi

  // The calling thread's L1, claimed (and cleared) on first touch after
  // the thread last used a different cache. Inline so a hit compiles to a
  // TLS address computation plus one predictable branch.
  L1Block& LocalL1() const {
    thread_local L1Block block;
    if (block.owner_id != id_) [[unlikely]] Claim(&block);
    return block;
  }
  void Claim(L1Block* block) const;

  bool LookupL2(uint64_t key, double* value) const;
  void InsertL2(uint64_t key, double value) const;

  struct Stripe;
  struct Impl;
  uint64_t id_ = 0;  // == impl_->id, copied flat for the hit path
  std::unique_ptr<Impl> impl_;
};

}  // namespace kjoin

#endif  // KJOIN_CORE_SIM_CACHE_H_
