#ifndef KJOIN_CORE_TOPK_JOIN_H_
#define KJOIN_CORE_TOPK_JOIN_H_

// Top-k knowledge-aware similarity join: the k most similar object pairs,
// without choosing τ up front.
//
// Strategy (threshold descent): run the threshold join at a high τ; if it
// yields fewer than k pairs, lower τ and rerun. Once a run returns >= k
// pairs, every pair outside the result has similarity < τ, so the k best
// pairs of the whole collection are among them — rank by exact similarity
// and cut. `tau_floor` bounds the descent: with fewer than k pairs above
// the floor, all of them are returned (flagged via `saturated = false`).

#include <utility>
#include <vector>

#include "core/kjoin.h"

namespace kjoin {

struct TopKOptions {
  // Threshold-join configuration (tau is managed by the descent).
  KJoinOptions join;
  // Descent schedule.
  double tau_start = 0.95;
  double tau_step = 0.10;
  double tau_floor = 0.50;
};

struct ScoredPair {
  int32_t first = -1;
  int32_t second = -1;
  double similarity = 0.0;

  friend bool operator==(const ScoredPair&, const ScoredPair&) = default;
};

struct TopKResult {
  // At most k pairs, sorted by similarity descending (ties: pair order).
  std::vector<ScoredPair> pairs;
  // True iff k pairs were certified (i.e. the k-th best pair overall is
  // included); false when the collection has fewer than k pairs above
  // tau_floor.
  bool saturated = false;
  // The final threshold the certifying join ran at.
  double final_tau = 0.0;
  // Total threshold-join invocations.
  int rounds = 0;
};

class TopKJoin {
 public:
  TopKJoin(const Hierarchy& hierarchy, TopKOptions options);

  TopKResult SelfJoinTopK(const std::vector<Object>& objects, int32_t k) const;

 private:
  const Hierarchy* hierarchy_;
  TopKOptions options_;
};

}  // namespace kjoin

#endif  // KJOIN_CORE_TOPK_JOIN_H_
