#ifndef KJOIN_CORE_OBJECT_H_
#define KJOIN_CORE_OBJECT_H_

// Objects (records) and their construction from raw text.

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/element.h"
#include "text/entity_matcher.h"
#include "text/tokenizer.h"

namespace kjoin {

// A record as K-Join sees it: a multiset of elements. |S| in the paper is
// size().
struct Object {
  int32_t id = -1;
  std::vector<Element> elements;

  int32_t size() const { return static_cast<int32_t>(elements.size()); }
};

// Turns token lists into Objects: interns tokens (identical tokens across
// *both* join sides must share token ids, so use one builder per join) and
// resolves each token against the knowledge hierarchy through the
// EntityMatcher.
class ObjectBuilder {
 public:
  // `matcher` must outlive the builder. multi_mapping=false gives the
  // paper's K-Join (one exact/synonym node per element), true gives
  // K-Join+ (§6.4: multiple nodes via ambiguity, synonyms and typos).
  ObjectBuilder(const EntityMatcher& matcher, bool multi_mapping);

  Object Build(int32_t id, const std::vector<std::string>& tokens);

  // Tokenizes `text` first (lower-case alphanumeric tokens).
  Object BuildFromText(int32_t id, std::string_view text);

  // Greedy longest-span entity recognition: runs of up to `max_span`
  // consecutive tokens whose concatenation matches a hierarchy label or
  // synonym exactly become ONE element ("mountain view" ->
  // MountainView). Multi-token spans require an exact/synonym match
  // (φ = 1) — approximate matching on concatenations would produce junk
  // entities. Remaining tokens are handled as in Build.
  Object BuildWithSpans(int32_t id, const std::vector<std::string>& tokens, int max_span = 3);

  // Dense id of `token`, creating one if new.
  int32_t InternToken(const std::string& token);

  // Seeds a fresh builder with a snapshot's token table: tokens[i] gets
  // id i, so objects built afterwards are id-compatible with a collection
  // serialized alongside that table (serve/snapshot.h). Requires an
  // interner with no tokens yet and no duplicate entries in `tokens`.
  void PreloadTokens(const std::vector<std::string>& tokens);

  // Every interned token in id order (the inverse of the intern map) —
  // what PreloadTokens consumes on restore.
  std::vector<std::string> TokenTable() const;

  int64_t num_distinct_tokens() const { return static_cast<int64_t>(token_ids_.size()); }
  bool multi_mapping() const { return multi_mapping_; }

 private:
  const EntityMatcher* matcher_;
  bool multi_mapping_;
  Tokenizer tokenizer_;
  std::unordered_map<std::string, int32_t> token_ids_;
};

}  // namespace kjoin

#endif  // KJOIN_CORE_OBJECT_H_
