#ifndef KJOIN_CORE_INVERTED_INDEX_H_
#define KJOIN_CORE_INVERTED_INDEX_H_

// The signature inverted index used for candidate generation (paper §3.3):
// L(g) lists the objects whose *prefix* contains signature g. Keys are
// dense global ranks (GlobalSignatureOrder), so lists live in one flat
// vector.

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace kjoin {

class InvertedIndex {
 public:
  explicit InvertedIndex(int32_t num_signature_ranks)
      : lists_(num_signature_ranks) {}

  void Add(int32_t rank, int32_t object_index) {
    KJOIN_DCHECK(rank >= 0 && rank < static_cast<int32_t>(lists_.size()));
    lists_[rank].push_back(object_index);
  }

  const std::vector<int32_t>& List(int32_t rank) const {
    KJOIN_DCHECK(rank >= 0 && rank < static_cast<int32_t>(lists_.size()));
    return lists_[rank];
  }

  int64_t total_entries() const {
    int64_t total = 0;
    for (const auto& list : lists_) total += static_cast<int64_t>(list.size());
    return total;
  }

 private:
  std::vector<std::vector<int32_t>> lists_;
};

}  // namespace kjoin

#endif  // KJOIN_CORE_INVERTED_INDEX_H_
