#include "core/element_similarity.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace kjoin {
namespace {

// ceil with protection against 2.9999999 style float noise just below an
// integer: such values round to the integer, never one above it. Erring
// low only loosens filters (keeps them sound).
int CeilSafe(double x) { return static_cast<int>(std::ceil(x - 1e-9)); }

}  // namespace

ElementSimilarity::ElementSimilarity(const LcaIndex& lca, ElementMetric metric)
    : lca_(&lca), metric_(metric) {}

double ElementSimilarity::NodeSim(NodeId x, NodeId y) const {
  if (x == y) return 1.0;
  const int dx = hierarchy().depth(x);
  const int dy = hierarchy().depth(y);
  const int dl = lca_->LcaDepth(x, y);
  switch (metric_) {
    case ElementMetric::kKJoin: {
      const int denom = std::max(dx, dy);
      return denom == 0 ? 1.0 : static_cast<double>(dl) / denom;
    }
    case ElementMetric::kWuPalmer: {
      const int denom = dx + dy;
      return denom == 0 ? 1.0 : 2.0 * dl / denom;
    }
  }
  return 0.0;
}

double ElementSimilarity::Sim(const Element& x, const Element& y) const {
  // Identical tokens are maximally similar regardless of mappings.
  if (x.token_id >= 0 && x.token_id == y.token_id) return 1.0;
  if (x.token == y.token && !x.token.empty()) return 1.0;
  double best = 0.0;
  for (const ElementMapping& mx : x.mappings) {
    for (const ElementMapping& my : y.mappings) {
      best = std::max(best, NodeSim(mx.node, my.node) * mx.phi * my.phi);
      if (best >= 1.0) return 1.0;
    }
  }
  return best;
}

int ElementSimilarity::MinSignatureDepth(double delta, ElementMetric metric) {
  KJOIN_CHECK(delta > 0.0 && delta < 1.0) << "delta must be in (0, 1), got " << delta;
  switch (metric) {
    case ElementMetric::kKJoin:
      return CeilSafe(delta / (1.0 - delta));
    case ElementMetric::kWuPalmer:
      return CeilSafe(delta / (2.0 * (1.0 - delta)));
  }
  return 0;
}

int ElementSimilarity::MinLcaDepthFor(int node_depth, double delta, ElementMetric metric) {
  switch (metric) {
    case ElementMetric::kKJoin:
      return CeilSafe(delta * node_depth);
    case ElementMetric::kWuPalmer:
      return CeilSafe(delta * node_depth / (2.0 - delta));
  }
  return 0;
}

double ElementSimilarity::MaxSimToDistinctNode(int node_depth, ElementMetric metric) {
  const double d = node_depth;
  switch (metric) {
    case ElementMetric::kKJoin:
      return d / (d + 1.0);
    case ElementMetric::kWuPalmer:
      return 2.0 * d / (2.0 * d + 1.0);
  }
  return 1.0;
}

double ElementSimilarity::MaxSimThroughDepth(int lca_depth, int node_depth,
                                             ElementMetric metric) {
  KJOIN_DCHECK(lca_depth <= node_depth);
  if (node_depth == 0) return 1.0;
  const double l = lca_depth;
  const double d = node_depth;
  switch (metric) {
    case ElementMetric::kKJoin:
      return l / d;
    case ElementMetric::kWuPalmer:
      return 2.0 * l / (l + d);
  }
  return 1.0;
}

}  // namespace kjoin
