#include "core/element_similarity.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace kjoin {
namespace {

// ceil with protection against 2.9999999 style float noise just below an
// integer: such values round to the integer, never one above it. Erring
// low only loosens filters (keeps them sound).
int CeilSafe(double x) { return static_cast<int>(std::ceil(x - 1e-9)); }

}  // namespace

ElementSimilarity::ElementSimilarity(const LcaIndex& lca, ElementMetric metric,
                                     const SimCache* cache)
    : lca_(&lca), metric_(metric), cache_(cache) {}

double ElementSimilarity::NodeSim(NodeId x, NodeId y) const {
  if (x == y) return 1.0;
  if (cache_ != nullptr) {
    return cache_->GetOrCompute(x, y, [&] { return NodeSimUncached(x, y); });
  }
  return NodeSimUncached(x, y);
}

double ElementSimilarity::NodeSimUncached(NodeId x, NodeId y) const {
  const int dx = hierarchy().depth(x);
  const int dy = hierarchy().depth(y);
  const int dl = lca_->LcaDepth(x, y);
  switch (metric_) {
    case ElementMetric::kKJoin: {
      const int denom = std::max(dx, dy);
      return denom == 0 ? 1.0 : static_cast<double>(dl) / denom;
    }
    case ElementMetric::kWuPalmer: {
      const int denom = dx + dy;
      return denom == 0 ? 1.0 : 2.0 * dl / denom;
    }
  }
  return 0.0;
}

double ElementSimilarity::NodeSimFromDepth(NodeId x, NodeId y, int lca_depth) const {
  // Same arithmetic as NodeSimUncached with the LcaDepth probe replaced by
  // the caller's batched result. x == y needs no special case: there
  // lca_depth == depth(x) == depth(y), and both metrics evaluate to
  // exactly 1.0.
  const int dx = hierarchy().depth(x);
  const int dy = hierarchy().depth(y);
  switch (metric_) {
    case ElementMetric::kKJoin: {
      const int denom = std::max(dx, dy);
      return denom == 0 ? 1.0 : static_cast<double>(lca_depth) / denom;
    }
    case ElementMetric::kWuPalmer: {
      const int denom = dx + dy;
      return denom == 0 ? 1.0 : 2.0 * lca_depth / denom;
    }
  }
  return 0.0;
}

double ElementSimilarity::Sim(const Element& x, const Element& y) const {
  // Identical tokens are maximally similar regardless of mappings.
  if (x.token_id >= 0 && x.token_id == y.token_id) return 1.0;
  if (x.token == y.token && !x.token.empty()) return 1.0;
  if (cache_ != nullptr && !x.mappings.empty() && !y.mappings.empty()) {
    // Pure K-Join elements (one mapping, φ = 1) reduce Eq. 2 to a single
    // NodeSim; key by node pair so synonyms of the same node share an
    // entry. Everything else — plus-mode elements with several weighted
    // mappings — is a pure function of the token-id pair (ObjectBuilder
    // interning: equal ids ⇒ equal mapping sets), so the whole loop
    // collapses to one probe on a hit. Either way the cached value is
    // bit-identical to what SimUncached would return.
    if (x.mappings.size() == 1 && y.mappings.size() == 1 && x.mappings[0].phi == 1.0 &&
        y.mappings[0].phi == 1.0) {
      const NodeId nx = x.mappings[0].node;
      const NodeId ny = y.mappings[0].node;
      if (nx == ny) return 1.0;
      return cache_->GetOrCompute(nx, ny, [&] { return NodeSimUncached(nx, ny); });
    }
    if (x.token_id >= 0 && y.token_id >= 0) {
      return cache_->GetOrComputeKey(SimCache::TokenKey(x.token_id, y.token_id),
                                     [&] { return SimUncached(x, y); });
    }
  }
  return SimUncached(x, y);
}

double ElementSimilarity::SimUncached(const Element& x, const Element& y) const {
  // NodeSim <= 1 caps the maximum at max(φ_x)·max(φ_y); a `best >= 1`
  // exit could never fire with φ < 1.
  const double bound = x.max_phi() * y.max_phi();
  double best = 0.0;
  for (const ElementMapping& mx : x.mappings) {
    for (const ElementMapping& my : y.mappings) {
      const double cap = mx.phi * my.phi;
      if (cap <= best) continue;  // cannot improve, whatever the node pair
      const double node_sim = mx.node == my.node ? 1.0 : NodeSimUncached(mx.node, my.node);
      best = std::max(best, node_sim * cap);
      if (best >= bound) return best;
    }
  }
  return best;
}

int ElementSimilarity::MinSignatureDepth(double delta, ElementMetric metric) {
  KJOIN_CHECK(delta > 0.0 && delta < 1.0) << "delta must be in (0, 1), got " << delta;
  switch (metric) {
    case ElementMetric::kKJoin:
      return CeilSafe(delta / (1.0 - delta));
    case ElementMetric::kWuPalmer:
      return CeilSafe(delta / (2.0 * (1.0 - delta)));
  }
  return 0;
}

int ElementSimilarity::MinLcaDepthFor(int node_depth, double delta, ElementMetric metric) {
  switch (metric) {
    case ElementMetric::kKJoin:
      return CeilSafe(delta * node_depth);
    case ElementMetric::kWuPalmer:
      return CeilSafe(delta * node_depth / (2.0 - delta));
  }
  return 0;
}

double ElementSimilarity::MaxSimToDistinctNode(int node_depth, ElementMetric metric) {
  const double d = node_depth;
  switch (metric) {
    case ElementMetric::kKJoin:
      return d / (d + 1.0);
    case ElementMetric::kWuPalmer:
      return 2.0 * d / (2.0 * d + 1.0);
  }
  return 1.0;
}

double ElementSimilarity::MaxSimThroughDepth(int lca_depth, int node_depth,
                                             ElementMetric metric) {
  KJOIN_DCHECK(lca_depth <= node_depth);
  if (node_depth == 0) return 1.0;
  const double l = lca_depth;
  const double d = node_depth;
  switch (metric) {
    case ElementMetric::kKJoin:
      return l / d;
    case ElementMetric::kWuPalmer:
      return 2.0 * l / (l + d);
  }
  return 1.0;
}

}  // namespace kjoin
