#ifndef KJOIN_CORE_PREFIX_H_
#define KJOIN_CORE_PREFIX_H_

// Global signature ordering and prefix computation (paper §3.1, §4.2).
//
// All signatures of all objects are sorted by document frequency
// ascending (rare signatures first), then each object keeps only a prefix
// of its sorted signature list:
//   * distinct-element rule (node prefix / path prefix, Definitions 5, 8):
//     drop suffix signatures while the dropped ones touch at most
//     τ_S − 1 distinct elements;
//   * weighted rule (weighted path prefix, Definition 9): drop suffix
//     signatures while the per-element-deduplicated maximum-similarity
//     mass of the dropped ones stays < τ|S|. An element whose signatures
//     are all dropped is accounted with mass max(1, its max weight):
//     an identical copy of the element on the other side matches it with
//     similarity 1 through any of its signatures.
// If two objects' prefixes share no signature, the objects cannot be
// τ-similar (Lemmas 2, 6, 7).

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/signature.h"

namespace kjoin {

// Maps SigId -> dense rank. Rank order = (document frequency ascending,
// SigId ascending). Build by feeding every object's signature list, then
// Finalize.
class GlobalSignatureOrder {
 public:
  // Counts each distinct SigId of the object once (document frequency).
  void CountObject(const std::vector<Signature>& sigs);

  // Sharded counting: CountDistinct accumulates one object's distinct
  // SigIds into a caller-owned (typically per-worker) map; MergeCounts
  // folds such a map in. MergeCounts over any partition of the objects is
  // equivalent to CountObject on each of them, in any merge order.
  static void CountDistinct(const std::vector<Signature>& sigs,
                            std::unordered_map<SigId, int32_t>* df);
  void MergeCounts(const std::unordered_map<SigId, int32_t>& df);

  // Freezes the order. No CountObject/MergeCounts afterwards.
  void Finalize();

  // Dense rank in [0, num_signatures()). The id must have been counted.
  int32_t Rank(SigId id) const;

  // Rank, or `fallback` for ids never counted. Unknown signatures have
  // document frequency 0, so callers ordering "rarest first" should pass
  // a fallback below every real rank (e.g. -1). Used by KJoinIndex, whose
  // queries may carry signatures the indexed collection never produced.
  int32_t RankOr(SigId id, int32_t fallback) const;

  int32_t num_signatures() const { return static_cast<int32_t>(by_rank_.size()); }

  // Final document frequency (0 for ids never counted). Like Rank/RankOr,
  // only answerable once the order is frozen.
  int32_t DocumentFrequency(SigId id) const;

 private:
  bool finalized_ = false;
  std::unordered_map<SigId, int32_t> df_;     // until Finalize: counts
  std::unordered_map<SigId, int32_t> rank_;   // after Finalize
  std::vector<SigId> by_rank_;
};

// Sorts `sigs` by global rank (ties: element index) — the layout the
// prefix routines and the join driver expect.
void SortByGlobalOrder(const GlobalSignatureOrder& order, std::vector<Signature>* sigs);

// SortByGlobalOrder, also writing the per-signature ranks (parallel to the
// sorted `sigs`, ascending with ties across elements) into `ranks` so the
// join driver never re-resolves Rank() in the hot path.
void SortByGlobalOrderWithRanks(const GlobalSignatureOrder& order, std::vector<Signature>* sigs,
                                std::vector<int32_t>* ranks);

// Prefix length under the distinct-element rule. `sigs` must be sorted by
// global order. `min_similar_elements` is τ_S. Returns a value in
// [1, sigs.size()] for non-empty input (0 only for empty input).
int32_t PrefixLengthDistinct(const std::vector<Signature>& sigs, int32_t min_similar_elements);

// Prefix length under the weighted rule; `overlap_budget` is τ|S| (or the
// metric-equivalent from MinSimilarElements' derivation).
int32_t PrefixLengthWeighted(const std::vector<Signature>& sigs, double overlap_budget);

}  // namespace kjoin

#endif  // KJOIN_CORE_PREFIX_H_
