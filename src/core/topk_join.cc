#include "core/topk_join.h"

#include <algorithm>

#include "common/logging.h"

namespace kjoin {

TopKJoin::TopKJoin(const Hierarchy& hierarchy, TopKOptions options)
    : hierarchy_(&hierarchy), options_(options) {
  KJOIN_CHECK(options.tau_floor > 0.0 && options.tau_floor <= options.tau_start);
  KJOIN_CHECK_GT(options.tau_step, 0.0);
}

TopKResult TopKJoin::SelfJoinTopK(const std::vector<Object>& objects, int32_t k) const {
  KJOIN_CHECK_GT(k, 0);
  TopKResult result;

  double tau = options_.tau_start;
  for (;;) {
    ++result.rounds;
    KJoinOptions join_options = options_.join;
    join_options.tau = tau;
    const KJoin join(*hierarchy_, join_options);
    const JoinResult round = join.SelfJoin(objects);

    const bool last_round = tau <= options_.tau_floor + 1e-12;
    if (static_cast<int32_t>(round.pairs.size()) >= k || last_round) {
      result.final_tau = tau;
      result.saturated = static_cast<int32_t>(round.pairs.size()) >= k;
      result.pairs.reserve(round.pairs.size());
      for (const auto& [a, b] : round.pairs) {
        result.pairs.push_back({a, b, join.ExactSimilarity(objects[a], objects[b])});
      }
      std::sort(result.pairs.begin(), result.pairs.end(),
                [](const ScoredPair& x, const ScoredPair& y) {
                  if (x.similarity != y.similarity) return x.similarity > y.similarity;
                  if (x.first != y.first) return x.first < y.first;
                  return x.second < y.second;
                });
      if (static_cast<int32_t>(result.pairs.size()) > k) result.pairs.resize(k);
      return result;
    }
    tau = std::max(options_.tau_floor, tau - options_.tau_step);
  }
}

}  // namespace kjoin
