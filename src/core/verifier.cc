#include "core/verifier.h"

#include <algorithm>
#include <new>
#include <unordered_map>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "matching/bounds.h"
#include "matching/greedy_matching.h"
#include "matching/hungarian.h"

namespace kjoin {
namespace {

// Accept/reject comparisons tolerate float noise in favour of accepting:
// borderline pairs go through the exact matcher rather than being pruned.
constexpr double kEps = 1e-9;

// Thread-local scratch vectors persist across BuildGroups calls to avoid
// per-pair allocation, but a single huge candidate pair would otherwise
// pin a peak-sized buffer in every worker thread for the rest of the
// join. Above this many elements the buffer is released after use.
constexpr size_t kMaxRetainedScratch = size_t{1} << 14;

template <typename T>
void ClampRetainedCapacity(std::vector<T>* vec) {
  if (vec->capacity() > kMaxRetainedScratch) {
    vec->clear();
    vec->shrink_to_fit();
  }
}

// Clamps a retained thread-local scratch vector on every exit path —
// including stack unwinding after a failed allocation — so an aborted
// verification can't pin a peak-sized buffer in its worker thread.
template <typename T>
class ScratchClamp {
 public:
  explicit ScratchClamp(std::vector<T>* vec) : vec_(vec) {}
  ~ScratchClamp() { ClampRetainedCapacity(vec_); }
  ScratchClamp(const ScratchClamp&) = delete;
  ScratchClamp& operator=(const ScratchClamp&) = delete;

 private:
  std::vector<T>* vec_;
};

// Minimal union-find over dense indices.
class UnionFind {
 public:
  explicit UnionFind(int32_t n) : parent_(n) {
    for (int32_t i = 0; i < n; ++i) parent_[i] = i;
  }
  int32_t Find(int32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(int32_t a, int32_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<int32_t> parent_;
};

}  // namespace

void VerifyStats::Add(const VerifyStats& other) {
  pairs_verified += other.pairs_verified;
  pruned_by_count += other.pruned_by_count;
  pruned_by_weighted_count += other.pruned_by_weighted_count;
  accepted_by_lower_bound += other.accepted_by_lower_bound;
  rejected_by_upper_bound += other.rejected_by_upper_bound;
  hungarian_runs += other.hungarian_runs;
  results += other.results;
}

Verifier::Verifier(const ElementSimilarity& element_sim, const SignatureGenerator& signatures,
                   VerifierOptions options)
    : element_sim_(&element_sim),
      signatures_(&signatures),
      options_(options),
      object_sim_(element_sim, options.delta, options.set_metric) {}

std::vector<Verifier::Group> Verifier::BuildGroups(const Object& x, const Object& y) const {
  // Fast path (pure K-Join): every element carries at most one mapping,
  // hence exactly one node signature — grouping is a sort-merge over
  // (signature, side, element) triples, no hashing or union-find.
  if (!options_.plus_mode) {
    struct Entry {
      SigId sig;
      int8_t side;  // 0 = x, 1 = y
      int32_t element;
    };
    static thread_local std::vector<Entry> entries;
    static thread_local std::vector<SigId> scratch;
    const ScratchClamp<Entry> clamp_entries(&entries);
    const ScratchClamp<SigId> clamp_scratch(&scratch);
    entries.clear();
    if (KJOIN_FAULT_POINT("verifier/scratch_alloc")) throw std::bad_alloc();
    auto append_side = [&](const Object& object, int8_t side) {
      for (int32_t i = 0; i < object.size(); ++i) {
        scratch.clear();
        signatures_->AppendNodeSignatures(object.elements[i], &scratch);
        for (SigId sig : scratch) entries.push_back({sig, side, i});
      }
    };
    append_side(x, 0);
    append_side(y, 1);
    std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
      if (a.sig != b.sig) return a.sig < b.sig;
      return a.side < b.side;
    });
    std::vector<Group> groups;
    size_t i = 0;
    while (i < entries.size()) {
      size_t j = i;
      while (j < entries.size() && entries[j].sig == entries[i].sig) ++j;
      // Populated on both sides iff the run starts with side 0 and ends
      // with side 1.
      if (entries[i].side == 0 && entries[j - 1].side == 1) {
        Group group;
        for (size_t k = i; k < j; ++k) {
          (entries[k].side == 0 ? group.left : group.right).push_back(entries[k].element);
        }
        groups.push_back(std::move(group));
      }
      i = j;
    }
    return groups;
  }

  // Collect node signatures per element for both sides.
  std::vector<std::vector<SigId>> sigs_x(x.size()), sigs_y(y.size());
  std::unordered_map<SigId, int32_t> sig_index;
  auto intern = [&](SigId id) {
    auto [it, inserted] = sig_index.emplace(id, static_cast<int32_t>(sig_index.size()));
    return it->second;
  };
  for (int32_t i = 0; i < x.size(); ++i) {
    signatures_->AppendNodeSignatures(x.elements[i], &sigs_x[i]);
    for (SigId id : sigs_x[i]) intern(id);
  }
  for (int32_t j = 0; j < y.size(); ++j) {
    signatures_->AppendNodeSignatures(y.elements[j], &sigs_y[j]);
    for (SigId id : sigs_y[j]) intern(id);
  }

  // Merge signatures co-occurring on one element (§6.4): elements of one
  // merged component can only be δ-similar within the component.
  UnionFind uf(static_cast<int32_t>(sig_index.size()));
  auto unite_element = [&](const std::vector<SigId>& sigs) {
    for (size_t k = 1; k < sigs.size(); ++k) {
      uf.Union(sig_index.at(sigs[0]), sig_index.at(sigs[k]));
    }
  };
  for (const auto& sigs : sigs_x) unite_element(sigs);
  for (const auto& sigs : sigs_y) unite_element(sigs);

  std::unordered_map<int32_t, int32_t> group_of_root;
  std::vector<Group> groups;
  auto group_for = [&](SigId first_sig) -> Group& {
    const int32_t root = uf.Find(sig_index.at(first_sig));
    auto [it, inserted] = group_of_root.emplace(root, static_cast<int32_t>(groups.size()));
    if (inserted) groups.emplace_back();
    return groups[it->second];
  };
  for (int32_t i = 0; i < x.size(); ++i) {
    if (!sigs_x[i].empty()) group_for(sigs_x[i][0]).left.push_back(i);
  }
  for (int32_t j = 0; j < y.size(); ++j) {
    if (!sigs_y[j].empty()) group_for(sigs_y[j][0]).right.push_back(j);
  }

  // Only groups populated on both sides can contribute to the matching.
  std::vector<Group> populated;
  populated.reserve(groups.size());
  for (Group& group : groups) {
    if (!group.left.empty() && !group.right.empty()) populated.push_back(std::move(group));
  }
  return populated;
}

bool Verifier::CountPrune(const std::vector<Group>& groups, double needed,
                          VerifyStats* stats) const {
  int64_t upper = 0;
  for (const Group& group : groups) {
    upper += std::min(group.left.size(), group.right.size());
  }
  if (static_cast<double>(upper) < needed - kEps) {
    ++stats->pruned_by_count;
    return true;
  }
  return false;
}

bool Verifier::WeightedCountPrune(const Object& x, const Object& y,
                                  const std::vector<Group>& groups, double needed,
                                  VerifyStats* stats) const {
  const Hierarchy& hierarchy = element_sim_->hierarchy();
  double upper = 0.0;
  for (const Group& group : groups) {
    // Exact part: multiset intersection on token ids.
    std::unordered_map<int32_t, int32_t> token_balance;
    for (int32_t i : group.left) ++token_balance[x.elements[i].token_id];
    int32_t exact = 0;
    for (int32_t j : group.right) {
      auto it = token_balance.find(y.elements[j].token_id);
      if (it != token_balance.end() && it->second > 0) {
        --it->second;
        ++exact;
      }
    }
    // Leftovers: the per-side sum of each element's best possible
    // similarity to a *non-identical* counterpart. In pure mode two
    // distinct tokens map to distinct nodes, so Lemma 4's d/(d+1) bound
    // applies; in plus mode only φ is sound.
    auto leftover_sum = [&](const Object& object, const std::vector<int32_t>& members,
                            std::unordered_map<int32_t, int32_t> balance) {
      double sum = 0.0;
      for (int32_t index : members) {
        const Element& element = object.elements[index];
        auto it = balance.find(element.token_id);
        if (it != balance.end() && it->second > 0) {
          --it->second;  // consumed by the exact part
          continue;
        }
        if (!element.has_node()) continue;  // identical-token-only elements
        double weight = 0.0;
        for (const ElementMapping& mapping : element.mappings) {
          const double cap =
              options_.plus_mode
                  ? mapping.phi
                  : mapping.phi * ElementSimilarity::MaxSimToDistinctNode(
                                      hierarchy.depth(mapping.node), element_sim_->metric());
          weight = std::max(weight, cap);
        }
        sum += weight;
      }
      return sum;
    };
    std::unordered_map<int32_t, int32_t> left_tokens, right_tokens;
    for (int32_t i : group.left) ++left_tokens[x.elements[i].token_id];
    for (int32_t j : group.right) ++right_tokens[y.elements[j].token_id];
    // Intersect balances: what each side can consume as "exact".
    std::unordered_map<int32_t, int32_t> left_consumable, right_consumable;
    for (const auto& [token, count] : left_tokens) {
      auto it = right_tokens.find(token);
      if (it != right_tokens.end()) {
        left_consumable[token] = std::min(count, it->second);
        right_consumable[token] = std::min(count, it->second);
      }
    }
    const double left_rest = leftover_sum(x, group.left, left_consumable);
    const double right_rest = leftover_sum(y, group.right, right_consumable);
    upper += exact + std::min(left_rest, right_rest);
  }
  if (upper < needed - kEps) {
    ++stats->pruned_by_weighted_count;
    return true;
  }
  return false;
}

bool Verifier::VerifyBasic(const Object& x, const Object& y, double needed,
                           VerifyStats* stats) const {
  const Bigraph graph = object_sim_.BuildBigraph(x, y);
  ++stats->hungarian_runs;
  return MaxWeightMatching(graph) >= needed - kEps;
}

namespace {

// The δ-thresholded bigraph restricted to one group.
Bigraph BuildGroupBigraph(const ObjectSimilarity& object_sim, const Object& x, const Object& y,
                          const std::vector<int32_t>& left, const std::vector<int32_t>& right) {
  Bigraph graph(static_cast<int32_t>(left.size()), static_cast<int32_t>(right.size()));
  const ElementSimilarity& esim = object_sim.element_similarity();
  for (size_t a = 0; a < left.size(); ++a) {
    for (size_t b = 0; b < right.size(); ++b) {
      const double sim = esim.Sim(x.elements[left[a]], y.elements[right[b]]);
      if (sim >= object_sim.delta() - 1e-12) {
        graph.AddEdge(static_cast<int32_t>(a), static_cast<int32_t>(b), sim);
      }
    }
  }
  return graph;
}

}  // namespace

bool Verifier::VerifySubGraph(const Object& x, const Object& y,
                              const std::vector<Group>& groups, double needed,
                              VerifyStats* stats) const {
  double overlap = 0.0;
  for (const Group& group : groups) {
    const Bigraph graph = BuildGroupBigraph(object_sim_, x, y, group.left, group.right);
    if (graph.edges().empty()) continue;
    ++stats->hungarian_runs;
    overlap += MaxWeightMatching(graph);
  }
  return overlap >= needed - kEps;
}

bool Verifier::VerifyAdaptive(const Object& x, const Object& y,
                              const std::vector<Group>& groups, double needed,
                              VerifyStats* stats) const {
  struct Bounded {
    Bigraph graph;
    double upper;
    double lower;
  };
  std::vector<Bounded> bounded;
  bounded.reserve(groups.size());
  double total_upper = 0.0;
  double total_lower = 0.0;
  for (const Group& group : groups) {
    Bigraph graph = BuildGroupBigraph(object_sim_, x, y, group.left, group.right);
    if (graph.edges().empty()) continue;
    const double upper = PerVertexUpperBound(graph);
    const double lower = CombinedLowerBound(graph);
    total_upper += upper;
    total_lower += lower;
    bounded.push_back({std::move(graph), upper, lower});
  }

  if (total_lower >= needed - kEps) {
    ++stats->accepted_by_lower_bound;
    return true;
  }
  if (total_upper < needed - kEps) {
    ++stats->rejected_by_upper_bound;
    return false;
  }

  // Resolve the loosest groups first (§5.2.3): they move the bounds most.
  std::sort(bounded.begin(), bounded.end(), [](const Bounded& a, const Bounded& b) {
    return (a.upper - a.lower) > (b.upper - b.lower);
  });
  for (const Bounded& entry : bounded) {
    ++stats->hungarian_runs;
    const double exact = MaxWeightMatching(entry.graph);
    total_upper += exact - entry.upper;
    total_lower += exact - entry.lower;
    if (total_upper < needed - kEps) return false;
    if (total_lower >= needed - kEps) return true;
  }
  // All groups resolved: both bounds equal the true overlap.
  return total_lower >= needed - kEps;
}

bool Verifier::Verify(const Object& x, const Object& y, VerifyStats* stats) const {
  ++stats->pairs_verified;
  const double needed =
      MinFuzzyOverlap(x.size(), y.size(), options_.tau, options_.set_metric);
  if (needed <= kEps) {
    ++stats->results;
    return true;
  }

  const std::vector<Group> groups = BuildGroups(x, y);
  if (options_.count_pruning && CountPrune(groups, needed, stats)) return false;
  if (options_.weighted_count_pruning &&
      WeightedCountPrune(x, y, groups, needed, stats)) {
    return false;
  }

  bool similar = false;
  switch (options_.mode) {
    case VerifyMode::kBasic:
      similar = VerifyBasic(x, y, needed, stats);
      break;
    case VerifyMode::kSubGraph:
      similar = VerifySubGraph(x, y, groups, needed, stats);
      break;
    case VerifyMode::kAdaptive:
      similar = VerifyAdaptive(x, y, groups, needed, stats);
      break;
  }
  if (similar) ++stats->results;
  return similar;
}

double Verifier::ExactSimilarity(const Object& x, const Object& y) const {
  return object_sim_.Similarity(x, y);
}

}  // namespace kjoin
