#include "core/verifier.h"

#include <algorithm>
#include <new>
#include <numeric>
#include <span>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "matching/bounds.h"
#include "matching/greedy_matching.h"
#include "matching/hungarian.h"

namespace kjoin {
namespace {

// Accept/reject comparisons tolerate float noise in favour of accepting:
// borderline pairs go through the exact matcher rather than being pruned.
constexpr double kEps = 1e-9;

// The per-thread scratch arena persists across Verify calls to avoid
// per-pair allocation, but a single huge candidate pair would otherwise
// pin a peak-sized arena in every worker thread for the rest of the join.
// Vectors above this many elements — and matcher/bigraph buffers above
// kMaxRetainedBytes — are released after use.
constexpr size_t kMaxRetainedScratch = size_t{1} << 14;
constexpr size_t kMaxRetainedBytes = size_t{4} << 20;

template <typename T>
void ClampRetainedCapacity(std::vector<T>* vec) {
  if (vec->capacity() > kMaxRetainedScratch) {
    vec->clear();
    vec->shrink_to_fit();
  }
}

}  // namespace

// One arena per worker thread. Every vector is grown on demand and kept
// for the next pair; ClampRetained() runs on every Verify exit path —
// including stack unwinding after a failed allocation — so an aborted
// verification can't pin a peak-sized arena in its thread either.
struct VerifyScratch {
  // ---- group partition (flat CSR; group g's left members are
  // left_members[left_offsets[g] .. left_offsets[g + 1])) ----
  int32_t num_groups = 0;
  std::vector<int32_t> left_offsets, left_members;
  std::vector<int32_t> right_offsets, right_members;

  std::span<const int32_t> Left(int32_t g) const {
    return {left_members.data() + left_offsets[g],
            static_cast<size_t>(left_offsets[g + 1] - left_offsets[g])};
  }
  std::span<const int32_t> Right(int32_t g) const {
    return {right_members.data() + right_offsets[g],
            static_cast<size_t>(right_offsets[g + 1] - right_offsets[g])};
  }
  int64_t CountBound(int32_t g) const {
    return std::min<int64_t>(left_offsets[g + 1] - left_offsets[g],
                             right_offsets[g + 1] - right_offsets[g]);
  }

  // ---- BuildGroups internals ----
  std::vector<int32_t> dense_x, dense_y;  // dense signature rank per plan entry
  std::vector<int32_t> uf_parent;         // union-find over dense ranks
  std::vector<int32_t> group_of_root;     // dense root -> raw group id
  std::vector<int32_t> elem_group_x, elem_group_y;
  std::vector<int32_t> group_left_count, group_right_count, group_final;
  // Plans built on the fly by the plan-less Verify overload (tests and
  // one-off callers); the join precomputes plans per object instead.
  ObjectGroupPlan plan_x, plan_y;

  // ---- weighted count pruning ----
  std::vector<int32_t> tokens_left, tokens_right;
  std::vector<int32_t> cap_token, cap_count, consumed;

  // ---- matching ----
  std::vector<Bigraph> graphs;  // per-built-group bigraphs (adaptive)
  HungarianScratch hungarian;
  GreedyScratch greedy;
  BoundScratch bound;
  std::vector<int32_t> build_order;  // adaptive group build order
  struct BuiltGroup {
    int32_t graph;  // index into `graphs`
    double upper;
    double lower;
  };
  std::vector<BuiltGroup> built;

  void ClampRetained() {
    ClampRetainedCapacity(&left_offsets);
    ClampRetainedCapacity(&left_members);
    ClampRetainedCapacity(&right_offsets);
    ClampRetainedCapacity(&right_members);
    ClampRetainedCapacity(&dense_x);
    ClampRetainedCapacity(&dense_y);
    ClampRetainedCapacity(&uf_parent);
    ClampRetainedCapacity(&group_of_root);
    ClampRetainedCapacity(&elem_group_x);
    ClampRetainedCapacity(&elem_group_y);
    ClampRetainedCapacity(&group_left_count);
    ClampRetainedCapacity(&group_right_count);
    ClampRetainedCapacity(&group_final);
    ClampRetainedCapacity(&tokens_left);
    ClampRetainedCapacity(&tokens_right);
    ClampRetainedCapacity(&cap_token);
    ClampRetainedCapacity(&cap_count);
    ClampRetainedCapacity(&consumed);
    ClampRetainedCapacity(&build_order);
    ClampRetainedCapacity(&built);
    ClampRetainedCapacity(&plan_x.entries);
    ClampRetainedCapacity(&plan_x.by_sig);
    ClampRetainedCapacity(&plan_y.entries);
    ClampRetainedCapacity(&plan_y.by_sig);
    ClampRetainedCapacity(&greedy.order);
    ClampRetainedCapacity(&greedy.left_used);
    ClampRetainedCapacity(&greedy.right_used);
    ClampRetainedCapacity(&bound.left_best);
    ClampRetainedCapacity(&bound.right_best);
    if (hungarian.RetainedBytes() > kMaxRetainedBytes) hungarian.Release();
    size_t graph_bytes = 0;
    for (const Bigraph& graph : graphs) graph_bytes += graph.RetainedBytes();
    if (graph_bytes > kMaxRetainedBytes) {
      graphs.clear();
      graphs.shrink_to_fit();
    }
  }
};

namespace {

// Clamps the thread's arena on every exit path of Verify.
class ScratchGuard {
 public:
  explicit ScratchGuard(VerifyScratch* scratch) : scratch_(scratch) {}
  ~ScratchGuard() { scratch_->ClampRetained(); }
  ScratchGuard(const ScratchGuard&) = delete;
  ScratchGuard& operator=(const ScratchGuard&) = delete;

 private:
  VerifyScratch* scratch_;
};

// Grows the bigraph pool on demand; slot buffers keep their capacity.
Bigraph* GraphSlot(VerifyScratch* scratch, size_t slot) {
  if (scratch->graphs.size() <= slot) scratch->graphs.resize(slot + 1);
  return &scratch->graphs[slot];
}

// A pure K-Join element: one mapping at full confidence. For such pairs
// Eq. 2 collapses to a single NodeSim, which is one LCA probe.
bool IsSingleFullMapping(const Element& e) {
  return e.mappings.size() == 1 && e.mappings[0].phi == 1.0;
}

// Batched bigraph build for pure elements with caching off: every
// cross-node pair's LCA is resolved through LcaIndex::LcaDepthBatch in
// one pass, so the sparse-table misses overlap instead of serializing
// through Sim(). Edge set and weights are bit-identical to the scalar
// loop (NodeSimFromDepth reproduces the uncached Sim arithmetic), and
// edges are inserted in the same (a, b) order.
void BuildGroupBigraphBatched(const ObjectSimilarity& object_sim, const Object& x,
                              const Object& y, std::span<const int32_t> left,
                              std::span<const int32_t> right, Bigraph* graph) {
  const ElementSimilarity& esim = object_sim.element_similarity();
  const size_t cells = left.size() * right.size();
  static thread_local std::vector<double> sims;
  static thread_local std::vector<NodeId> xs, ys;
  static thread_local std::vector<int32_t> cell_of_pair, depths;
  sims.assign(cells, 0.0);
  xs.clear();
  ys.clear();
  cell_of_pair.clear();
  for (size_t a = 0; a < left.size(); ++a) {
    const Element& ex = x.elements[left[a]];
    for (size_t b = 0; b < right.size(); ++b) {
      const Element& ey = y.elements[right[b]];
      const size_t cell = a * right.size() + b;
      if ((ex.token_id >= 0 && ex.token_id == ey.token_id) ||
          (ex.token == ey.token && !ex.token.empty()) ||
          ex.mappings[0].node == ey.mappings[0].node) {
        sims[cell] = 1.0;
      } else {
        xs.push_back(ex.mappings[0].node);
        ys.push_back(ey.mappings[0].node);
        cell_of_pair.push_back(static_cast<int32_t>(cell));
      }
    }
  }
  depths.resize(xs.size());
  esim.lca().LcaDepthBatch(xs.data(), ys.data(), static_cast<int32_t>(xs.size()),
                           depths.data());
  for (size_t p = 0; p < xs.size(); ++p) {
    sims[static_cast<size_t>(cell_of_pair[p])] = esim.NodeSimFromDepth(xs[p], ys[p], depths[p]);
  }
  for (size_t a = 0; a < left.size(); ++a) {
    for (size_t b = 0; b < right.size(); ++b) {
      const double sim = sims[a * right.size() + b];
      if (sim >= object_sim.delta() - 1e-12) {
        graph->AddEdge(static_cast<int32_t>(a), static_cast<int32_t>(b), sim);
      }
    }
  }
}

// The δ-thresholded bigraph restricted to one group, into a pooled graph.
void BuildGroupBigraph(const ObjectSimilarity& object_sim, const Object& x, const Object& y,
                       std::span<const int32_t> left, std::span<const int32_t> right,
                       Bigraph* graph) {
  graph->Reset(static_cast<int32_t>(left.size()), static_cast<int32_t>(right.size()));
  const ElementSimilarity& esim = object_sim.element_similarity();
  if (!esim.cached() && !left.empty() && !right.empty()) {
    bool pure = true;
    for (const int32_t i : left) {
      if (!IsSingleFullMapping(x.elements[i])) {
        pure = false;
        break;
      }
    }
    if (pure) {
      for (const int32_t j : right) {
        if (!IsSingleFullMapping(y.elements[j])) {
          pure = false;
          break;
        }
      }
    }
    if (pure) {
      BuildGroupBigraphBatched(object_sim, x, y, left, right, graph);
      return;
    }
  }
  for (size_t a = 0; a < left.size(); ++a) {
    for (size_t b = 0; b < right.size(); ++b) {
      const double sim = esim.Sim(x.elements[left[a]], y.elements[right[b]]);
      if (sim >= object_sim.delta() - 1e-12) {
        graph->AddEdge(static_cast<int32_t>(a), static_cast<int32_t>(b), sim);
      }
    }
  }
}

int32_t UnionFindRoot(std::vector<int32_t>& parent, int32_t x) {
  while (parent[x] != x) {
    parent[x] = parent[parent[x]];
    x = parent[x];
  }
  return x;
}

}  // namespace

void VerifyStats::Add(const VerifyStats& other) {
  pairs_verified += other.pairs_verified;
  pruned_by_count += other.pruned_by_count;
  pruned_by_weighted_count += other.pruned_by_weighted_count;
  accepted_by_lower_bound += other.accepted_by_lower_bound;
  rejected_by_upper_bound += other.rejected_by_upper_bound;
  hungarian_runs += other.hungarian_runs;
  groups_pinned += other.groups_pinned;
  results += other.results;
}

Verifier::Verifier(const ElementSimilarity& element_sim, const SignatureGenerator& signatures,
                   VerifierOptions options)
    : element_sim_(&element_sim),
      signatures_(&signatures),
      options_(options),
      object_sim_(element_sim, options.delta, options.set_metric) {}

void Verifier::BuildPlan(const Object& object, ObjectGroupPlan* plan) const {
  plan->entries.clear();
  static thread_local std::vector<SigId> sig_buffer;
  for (int32_t i = 0; i < object.size(); ++i) {
    sig_buffer.clear();
    signatures_->AppendNodeSignatures(object.elements[i], &sig_buffer);
    for (SigId sig : sig_buffer) plan->entries.push_back({sig, i});
  }
  const std::vector<ObjectGroupPlan::Entry>& entries = plan->entries;
  plan->by_sig.resize(entries.size());
  std::iota(plan->by_sig.begin(), plan->by_sig.end(), 0);
  std::sort(plan->by_sig.begin(), plan->by_sig.end(), [&](int32_t a, int32_t b) {
    if (entries[a].sig != entries[b].sig) return entries[a].sig < entries[b].sig;
    return a < b;  // element-major generation order: index order = element order
  });
}

void Verifier::BuildGroups(const Object& x, const Object& y, const ObjectGroupPlan& px,
                           const ObjectGroupPlan& py, VerifyScratch* s) const {
  const std::vector<ObjectGroupPlan::Entry>& ex = px.entries;
  const std::vector<ObjectGroupPlan::Entry>& ey = py.entries;
  const std::vector<int32_t>& ox = px.by_sig;
  const std::vector<int32_t>& oy = py.by_sig;

  s->num_groups = 0;
  s->left_offsets.assign(1, 0);
  s->right_offsets.assign(1, 0);
  s->left_members.clear();
  s->right_members.clear();

  // Fast path (pure K-Join): every element carries at most one mapping,
  // hence exactly one node signature — grouping is a linear merge of the
  // two signature-sorted plans; runs present on both sides become groups.
  if (!options_.plus_mode) {
    size_t i = 0, j = 0;
    while (i < ox.size() && j < oy.size()) {
      const SigId sx = ex[ox[i]].sig;
      const SigId sy = ey[oy[j]].sig;
      if (sx < sy) {
        ++i;
        continue;
      }
      if (sy < sx) {
        ++j;
        continue;
      }
      const size_t i0 = i, j0 = j;
      while (i < ox.size() && ex[ox[i]].sig == sx) ++i;
      while (j < oy.size() && ey[oy[j]].sig == sx) ++j;
      for (size_t k = i0; k < i; ++k) s->left_members.push_back(ex[ox[k]].element);
      for (size_t k = j0; k < j; ++k) s->right_members.push_back(ey[oy[k]].element);
      s->left_offsets.push_back(static_cast<int32_t>(s->left_members.size()));
      s->right_offsets.push_back(static_cast<int32_t>(s->right_members.size()));
      ++s->num_groups;
    }
    return;
  }

  // Plus mode (§6.4): an element may carry several node signatures, and
  // signatures co-occurring on one element merge into one group. Dense
  // signature ranks come from merging the two sorted plans (no hash map);
  // the merge of co-occurring signatures is a union-find over the ranks.
  s->dense_x.resize(ex.size());
  s->dense_y.resize(ey.size());
  int32_t num_dense = 0;
  {
    size_t i = 0, j = 0;
    while (i < ox.size() || j < oy.size()) {
      SigId sig;
      if (j >= oy.size() || (i < ox.size() && ex[ox[i]].sig <= ey[oy[j]].sig)) {
        sig = ex[ox[i]].sig;
      } else {
        sig = ey[oy[j]].sig;
      }
      while (i < ox.size() && ex[ox[i]].sig == sig) s->dense_x[ox[i++]] = num_dense;
      while (j < oy.size() && ey[oy[j]].sig == sig) s->dense_y[oy[j++]] = num_dense;
      ++num_dense;
    }
  }

  std::vector<int32_t>& parent = s->uf_parent;
  parent.resize(num_dense);
  std::iota(parent.begin(), parent.end(), 0);
  // Plan entries are element-major, so each element's signatures are
  // contiguous in entry order.
  for (size_t k = 1; k < ex.size(); ++k) {
    if (ex[k].element == ex[k - 1].element) {
      parent[UnionFindRoot(parent, s->dense_x[k])] = UnionFindRoot(parent, s->dense_x[k - 1]);
    }
  }
  for (size_t k = 1; k < ey.size(); ++k) {
    if (ey[k].element == ey[k - 1].element) {
      parent[UnionFindRoot(parent, s->dense_y[k])] = UnionFindRoot(parent, s->dense_y[k - 1]);
    }
  }

  // Raw group ids in first-encounter order (x elements, then y); each
  // element joins the group of its first signature's component.
  s->group_of_root.assign(num_dense, -1);
  s->elem_group_x.assign(x.size(), -1);
  s->elem_group_y.assign(y.size(), -1);
  int32_t num_raw = 0;
  for (size_t k = 0; k < ex.size(); ++k) {
    if (s->elem_group_x[ex[k].element] != -1) continue;  // not the first signature
    const int32_t root = UnionFindRoot(parent, s->dense_x[k]);
    if (s->group_of_root[root] == -1) s->group_of_root[root] = num_raw++;
    s->elem_group_x[ex[k].element] = s->group_of_root[root];
  }
  for (size_t k = 0; k < ey.size(); ++k) {
    if (s->elem_group_y[ey[k].element] != -1) continue;
    const int32_t root = UnionFindRoot(parent, s->dense_y[k]);
    if (s->group_of_root[root] == -1) s->group_of_root[root] = num_raw++;
    s->elem_group_y[ey[k].element] = s->group_of_root[root];
  }

  // Only groups populated on both sides can contribute to the matching;
  // survivors keep their raw order and ascending member order.
  s->group_left_count.assign(num_raw, 0);
  s->group_right_count.assign(num_raw, 0);
  for (int32_t g : s->elem_group_x) {
    if (g != -1) ++s->group_left_count[g];
  }
  for (int32_t g : s->elem_group_y) {
    if (g != -1) ++s->group_right_count[g];
  }
  s->group_final.resize(num_raw);
  for (int32_t g = 0; g < num_raw; ++g) {
    if (s->group_left_count[g] > 0 && s->group_right_count[g] > 0) {
      s->group_final[g] = s->num_groups++;
      s->left_offsets.push_back(s->left_offsets.back() + s->group_left_count[g]);
      s->right_offsets.push_back(s->right_offsets.back() + s->group_right_count[g]);
    } else {
      s->group_final[g] = -1;
    }
  }
  s->left_members.resize(s->left_offsets.back());
  s->right_members.resize(s->right_offsets.back());
  // Scatter with running cursors (reusing the count arrays).
  for (int32_t g = 0; g < num_raw; ++g) {
    const int32_t f = s->group_final[g];
    if (f != -1) {
      s->group_left_count[g] = s->left_offsets[f];
      s->group_right_count[g] = s->right_offsets[f];
    }
  }
  for (int32_t i = 0; i < x.size(); ++i) {
    const int32_t g = s->elem_group_x[i];
    if (g != -1 && s->group_final[g] != -1) s->left_members[s->group_left_count[g]++] = i;
  }
  for (int32_t j = 0; j < y.size(); ++j) {
    const int32_t g = s->elem_group_y[j];
    if (g != -1 && s->group_final[g] != -1) s->right_members[s->group_right_count[g]++] = j;
  }
}

bool Verifier::CountPrune(const VerifyScratch& s, double needed, VerifyStats* stats) const {
  int64_t upper = 0;
  for (int32_t g = 0; g < s.num_groups; ++g) upper += s.CountBound(g);
  if (static_cast<double>(upper) < needed - kEps) {
    ++stats->pruned_by_count;
    return true;
  }
  return false;
}

bool Verifier::WeightedCountPrune(const Object& x, const Object& y, VerifyScratch* s,
                                  double needed, VerifyStats* stats) const {
  const Hierarchy& hierarchy = element_sim_->hierarchy();
  double upper = 0.0;
  for (int32_t g = 0; g < s->num_groups; ++g) {
    const std::span<const int32_t> left = s->Left(g);
    const std::span<const int32_t> right = s->Right(g);
    // Exact part: multiset intersection on token ids, via sorted token
    // arrays merged into per-token caps (min of the two counts).
    s->tokens_left.clear();
    for (int32_t i : left) s->tokens_left.push_back(x.elements[i].token_id);
    std::sort(s->tokens_left.begin(), s->tokens_left.end());
    s->tokens_right.clear();
    for (int32_t j : right) s->tokens_right.push_back(y.elements[j].token_id);
    std::sort(s->tokens_right.begin(), s->tokens_right.end());
    s->cap_token.clear();
    s->cap_count.clear();
    int32_t exact = 0;
    for (size_t a = 0, b = 0; a < s->tokens_left.size() && b < s->tokens_right.size();) {
      if (s->tokens_left[a] < s->tokens_right[b]) {
        ++a;
      } else if (s->tokens_right[b] < s->tokens_left[a]) {
        ++b;
      } else {
        const int32_t token = s->tokens_left[a];
        int32_t ca = 0, cb = 0;
        while (a < s->tokens_left.size() && s->tokens_left[a] == token) ++a, ++ca;
        while (b < s->tokens_right.size() && s->tokens_right[b] == token) ++b, ++cb;
        s->cap_token.push_back(token);
        s->cap_count.push_back(std::min(ca, cb));
        exact += std::min(ca, cb);
      }
    }
    // Leftovers: the per-side sum of each element's best possible
    // similarity to a *non-identical* counterpart — the first cap
    // occurrences of a shared token (in member order) count as exact and
    // are skipped. In pure mode two distinct tokens map to distinct
    // nodes, so Lemma 4's d/(d+1) bound applies; in plus mode only φ is
    // sound.
    auto leftover_sum = [&](const Object& object, std::span<const int32_t> members) {
      s->consumed.assign(s->cap_token.size(), 0);
      double sum = 0.0;
      for (int32_t index : members) {
        const Element& element = object.elements[index];
        const auto it =
            std::lower_bound(s->cap_token.begin(), s->cap_token.end(), element.token_id);
        if (it != s->cap_token.end() && *it == element.token_id) {
          const size_t pos = static_cast<size_t>(it - s->cap_token.begin());
          if (s->consumed[pos] < s->cap_count[pos]) {
            ++s->consumed[pos];  // consumed by the exact part
            continue;
          }
        }
        if (!element.has_node()) continue;  // identical-token-only elements
        double weight = 0.0;
        for (const ElementMapping& mapping : element.mappings) {
          const double cap =
              options_.plus_mode
                  ? mapping.phi
                  : mapping.phi * ElementSimilarity::MaxSimToDistinctNode(
                                      hierarchy.depth(mapping.node), element_sim_->metric());
          weight = std::max(weight, cap);
        }
        sum += weight;
      }
      return sum;
    };
    const double left_rest = leftover_sum(x, left);
    const double right_rest = leftover_sum(y, right);
    upper += exact + std::min(left_rest, right_rest);
  }
  if (upper < needed - kEps) {
    ++stats->pruned_by_weighted_count;
    return true;
  }
  return false;
}

bool Verifier::VerifyBasic(const Object& x, const Object& y, double needed, VerifyScratch* s,
                           VerifyStats* stats) const {
  Bigraph* graph = GraphSlot(s, 0);
  object_sim_.BuildBigraph(x, y, graph);
  ++stats->hungarian_runs;
  return MaxWeightMatching(*graph, &s->hungarian) >= needed - kEps;
}

bool Verifier::VerifySubGraph(const Object& x, const Object& y, VerifyScratch* s,
                              double needed, VerifyStats* stats) const {
  Bigraph* graph = GraphSlot(s, 0);
  double overlap = 0.0;
  for (int32_t g = 0; g < s->num_groups; ++g) {
    BuildGroupBigraph(object_sim_, x, y, s->Left(g), s->Right(g), graph);
    if (graph->edges().empty()) continue;
    ++stats->hungarian_runs;
    overlap += MaxWeightMatching(*graph, &s->hungarian);
  }
  return overlap >= needed - kEps;
}

bool Verifier::VerifyAdaptive(const Object& x, const Object& y, VerifyScratch* s,
                              double needed, VerifyStats* stats) const {
  // Build groups in decreasing count-bound order, maintaining a running
  // lower bound over built groups and a count upper bound over unbuilt
  // ones. A candidate whose greedy matchings already reach `needed` is
  // accepted before the remaining (small) groups are even materialized; a
  // candidate whose built upper bounds plus everything the unbuilt groups
  // could possibly add stays short is rejected the same way. Both checks
  // are sound because groups are disjoint, edge weights lie in (0, 1],
  // and a group's matching size is at most min(|left|, |right|).
  std::vector<int32_t>& build_order = s->build_order;
  build_order.resize(s->num_groups);
  std::iota(build_order.begin(), build_order.end(), 0);
  std::sort(build_order.begin(), build_order.end(), [&](int32_t a, int32_t b) {
    const int64_t ca = s->CountBound(a), cb = s->CountBound(b);
    if (ca != cb) return ca > cb;
    return a < b;
  });
  double remaining_count_ub = 0.0;
  for (int32_t g = 0; g < s->num_groups; ++g) {
    remaining_count_ub += static_cast<double>(s->CountBound(g));
  }

  s->built.clear();
  double built_upper = 0.0;
  double built_lower = 0.0;
  for (int32_t g : build_order) {
    if (built_lower >= needed - kEps) {
      ++stats->accepted_by_lower_bound;
      return true;
    }
    if (built_upper + remaining_count_ub < needed - kEps) {
      ++stats->rejected_by_upper_bound;
      return false;
    }
    remaining_count_ub -= static_cast<double>(s->CountBound(g));
    Bigraph* graph = GraphSlot(s, s->built.size());
    BuildGroupBigraph(object_sim_, x, y, s->Left(g), s->Right(g), graph);
    if (graph->edges().empty()) continue;
    const double upper = PerVertexUpperBound(*graph, &s->bound);
    const double lower = CombinedLowerBound(*graph, &s->greedy);
    built_upper += upper;
    built_lower += lower;
    s->built.push_back({static_cast<int32_t>(s->built.size()), upper, lower});
  }
  if (built_lower >= needed - kEps) {
    ++stats->accepted_by_lower_bound;
    return true;
  }
  if (built_upper < needed - kEps) {
    ++stats->rejected_by_upper_bound;
    return false;
  }

  // Resolve exactly in decreasing upper-bound order (§5.2.3): the groups
  // that promise the most move the bounds fastest. Groups whose bounds
  // already coincide (every 1 × k group does) are pinned to the exact
  // value without a Hungarian run.
  std::sort(s->built.begin(), s->built.end(),
            [](const VerifyScratch::BuiltGroup& a, const VerifyScratch::BuiltGroup& b) {
              if (a.upper != b.upper) return a.upper > b.upper;
              return a.graph < b.graph;
            });
  double total_upper = built_upper;
  double total_lower = built_lower;
  for (const VerifyScratch::BuiltGroup& entry : s->built) {
    double exact;
    if (entry.upper <= entry.lower) {
      ++stats->groups_pinned;
      exact = entry.lower;
    } else {
      ++stats->hungarian_runs;
      exact = MaxWeightMatching(s->graphs[entry.graph], &s->hungarian);
    }
    total_upper += exact - entry.upper;
    total_lower += exact - entry.lower;
    if (total_upper < needed - kEps) return false;
    if (total_lower >= needed - kEps) return true;
  }
  // All groups resolved: both bounds equal the true overlap.
  return total_lower >= needed - kEps;
}

bool Verifier::VerifyWithPlans(const Object& x, const Object& y, double tau,
                               const ObjectGroupPlan& plan_x, const ObjectGroupPlan& plan_y,
                               VerifyScratch* scratch, VerifyStats* stats) const {
  ++stats->pairs_verified;
  const double needed = MinFuzzyOverlap(x.size(), y.size(), tau, options_.set_metric);
  if (needed <= kEps) {
    ++stats->results;
    return true;
  }

  if (KJOIN_FAULT_POINT("verifier/scratch_alloc")) throw std::bad_alloc();
  BuildGroups(x, y, plan_x, plan_y, scratch);
  if (options_.count_pruning && CountPrune(*scratch, needed, stats)) return false;
  if (options_.weighted_count_pruning &&
      WeightedCountPrune(x, y, scratch, needed, stats)) {
    return false;
  }

  bool similar = false;
  switch (options_.mode) {
    case VerifyMode::kBasic:
      similar = VerifyBasic(x, y, needed, scratch, stats);
      break;
    case VerifyMode::kSubGraph:
      similar = VerifySubGraph(x, y, scratch, needed, stats);
      break;
    case VerifyMode::kAdaptive:
      similar = VerifyAdaptive(x, y, scratch, needed, stats);
      break;
  }
  if (similar) ++stats->results;
  return similar;
}

namespace {

VerifyScratch& ThreadScratch() {
  static thread_local VerifyScratch scratch;
  return scratch;
}

}  // namespace

bool Verifier::Verify(const Object& x, const Object& y, const ObjectGroupPlan& plan_x,
                      const ObjectGroupPlan& plan_y, VerifyStats* stats) const {
  VerifyScratch& scratch = ThreadScratch();
  const ScratchGuard guard(&scratch);
  return VerifyWithPlans(x, y, options_.tau, plan_x, plan_y, &scratch, stats);
}

bool Verifier::Verify(const Object& x, const Object& y, VerifyStats* stats) const {
  VerifyScratch& scratch = ThreadScratch();
  const ScratchGuard guard(&scratch);
  BuildPlan(x, &scratch.plan_x);
  BuildPlan(y, &scratch.plan_y);
  return VerifyWithPlans(x, y, options_.tau, scratch.plan_x, scratch.plan_y, &scratch, stats);
}

bool Verifier::VerifyAt(const Object& x, const Object& y, double tau,
                        VerifyStats* stats) const {
  KJOIN_DCHECK(tau >= options_.tau)
      << "VerifyAt threshold below the configured tau would be incomplete";
  VerifyScratch& scratch = ThreadScratch();
  const ScratchGuard guard(&scratch);
  BuildPlan(x, &scratch.plan_x);
  BuildPlan(y, &scratch.plan_y);
  return VerifyWithPlans(x, y, tau, scratch.plan_x, scratch.plan_y, &scratch, stats);
}

bool Verifier::VerifyAt(const Object& x, const ObjectGroupPlan& plan_x, const Object& y,
                        double tau, VerifyStats* stats) const {
  KJOIN_DCHECK(tau >= options_.tau)
      << "VerifyAt threshold below the configured tau would be incomplete";
  VerifyScratch& scratch = ThreadScratch();
  const ScratchGuard guard(&scratch);
  BuildPlan(y, &scratch.plan_y);
  return VerifyWithPlans(x, y, tau, plan_x, scratch.plan_y, &scratch, stats);
}

double Verifier::ExactSimilarity(const Object& x, const Object& y) const {
  return object_sim_.Similarity(x, y);
}

}  // namespace kjoin
