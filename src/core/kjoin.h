#ifndef KJOIN_CORE_KJOIN_H_
#define KJOIN_CORE_KJOIN_H_

// The K-Join driver: knowledge-aware similarity join (paper Definition 3).
//
// Pipeline (§3.3, §4.2.3):
//   1. generate signatures for every object under the configured scheme;
//   2. fix the global signature order (document frequency ascending);
//   3. compute each object's (weighted) prefix;
//   4. stream objects through an inverted index on prefix signatures —
//      objects sharing a prefix signature become candidate pairs;
//   5. verify candidates (count pruning -> weighted count pruning ->
//      Basic/SubGraph/Adaptive matching).
//
// Usage:
//   Hierarchy tree = ...;
//   EntityMatcher matcher(tree);
//   ObjectBuilder builder(matcher, /*multi_mapping=*/true);   // K-Join+
//   std::vector<Object> objects = ...;                        // via builder
//   KJoin join(tree, options);
//   JoinResult result = join.SelfJoin(objects);

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/element_similarity.h"
#include "core/object.h"
#include "core/object_similarity.h"
#include "core/prefix.h"
#include "core/signature.h"
#include "core/verifier.h"
#include "hierarchy/hierarchy.h"
#include "hierarchy/lca.h"

namespace kjoin {

struct KJoinOptions {
  // Element similarity threshold δ (edges below it are dropped).
  double delta = 0.7;
  // Object similarity threshold τ.
  double tau = 0.8;
  // Filter scheme: node signatures (§3.1) or depth-aware path signatures
  // (§4.1). kDeepPath is the paper's best performer and the default.
  SignatureScheme scheme = SignatureScheme::kDeepPath;
  // Weighted path prefix (Definition 9) instead of the plain distinct-
  // element rule; only meaningful for kDeepPath.
  bool weighted_prefix = true;
  VerifyMode verify_mode = VerifyMode::kAdaptive;
  ElementMetric element_metric = ElementMetric::kKJoin;
  SetMetric set_metric = SetMetric::kJaccard;
  bool count_pruning = true;
  bool weighted_count_pruning = true;
  // K-Join+ semantics (multi-node element mappings). Objects must then be
  // built with ObjectBuilder(matcher, /*multi_mapping=*/true).
  bool plus_mode = false;
  // Worker threads for the verification phase (candidate generation stays
  // single-threaded; it is index-order dependent and rarely the
  // bottleneck). 1 = fully sequential.
  int num_threads = 1;
};

struct JoinStats {
  int64_t num_objects_left = 0;
  int64_t num_objects_right = 0;
  int64_t total_signatures = 0;
  int64_t prefix_signatures = 0;
  // Distinct candidate pairs produced by the filter (each verified once).
  int64_t candidates = 0;
  int64_t results = 0;
  double signature_seconds = 0.0;
  double filter_seconds = 0.0;  // candidate generation (probing + indexing)
  double verify_seconds = 0.0;
  double total_seconds = 0.0;
  VerifyStats verify;
};

struct JoinResult {
  // Similar pairs as indices into the input vector(s); for a self join
  // first < second.
  std::vector<std::pair<int32_t, int32_t>> pairs;
  JoinStats stats;
};

class KJoin {
 public:
  // The hierarchy must outlive the KJoin instance.
  KJoin(const Hierarchy& hierarchy, KJoinOptions options);

  // All pairs x < y with SIMδ(objects[x], objects[y]) >= τ.
  JoinResult SelfJoin(const std::vector<Object>& objects) const;

  // R-S join (§6.1): all (r, s) in R × S with SIMδ >= τ. Both collections
  // must come from the same ObjectBuilder (shared token interner).
  JoinResult Join(const std::vector<Object>& left, const std::vector<Object>& right) const;

  // Exact similarity under this join's configuration (no filtering).
  double ExactSimilarity(const Object& x, const Object& y) const;

  const KJoinOptions& options() const { return options_; }
  const Hierarchy& hierarchy() const { return *hierarchy_; }

 private:
  // Per-object signature lists sorted by global order plus prefix length.
  struct Prepared {
    std::vector<std::vector<Signature>> sigs;
    std::vector<int32_t> prefix_len;
  };

  // Signature generation + global ordering + prefixes over one or two
  // collections.
  Prepared Prepare(const std::vector<const std::vector<Object>*>& collections,
                   GlobalSignatureOrder* order, JoinStats* stats) const;

  int32_t PrefixLengthFor(const std::vector<Signature>& sigs, int32_t object_size) const;

  // Verifies candidate (left-index, right-index) pairs — in parallel when
  // options_.num_threads > 1 — and appends the similar ones to
  // result->pairs (kept in candidate order). Timing goes to
  // verify_seconds, per-pair counters to result->stats.verify.
  void VerifyCandidates(const std::vector<Object>& left, const std::vector<Object>& right,
                        const std::vector<std::pair<int32_t, int32_t>>& candidates,
                        JoinResult* result) const;

  const Hierarchy* hierarchy_;
  KJoinOptions options_;
  LcaIndex lca_;
  ElementSimilarity element_sim_;
  SignatureGenerator signatures_;
  Verifier verifier_;
};

}  // namespace kjoin

#endif  // KJOIN_CORE_KJOIN_H_
