#ifndef KJOIN_CORE_KJOIN_H_
#define KJOIN_CORE_KJOIN_H_

// The K-Join driver: knowledge-aware similarity join (paper Definition 3).
//
// Pipeline (§3.3, §4.2.3):
//   1. generate signatures for every object under the configured scheme;
//   2. fix the global signature order (document frequency ascending);
//   3. compute each object's (weighted) prefix;
//   4. stream objects through an inverted index on prefix signatures —
//      objects sharing a prefix signature become candidate pairs;
//   5. verify candidates (count pruning -> weighted count pruning ->
//      Basic/SubGraph/Adaptive matching).
//
// Usage:
//   Hierarchy tree = ...;
//   EntityMatcher matcher(tree);
//   ObjectBuilder builder(matcher, /*multi_mapping=*/true);   // K-Join+
//   std::vector<Object> objects = ...;                        // via builder
//   KJoin join(tree, options);
//   JoinResult result = join.SelfJoin(objects);

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/element_similarity.h"
#include "core/object.h"
#include "core/object_similarity.h"
#include "core/prefix.h"
#include "core/signature.h"
#include "core/verifier.h"
#include "hierarchy/hierarchy.h"
#include "hierarchy/lca.h"

namespace kjoin {

struct KJoinOptions {
  // Element similarity threshold δ (edges below it are dropped).
  double delta = 0.7;
  // Object similarity threshold τ.
  double tau = 0.8;
  // Filter scheme: node signatures (§3.1) or depth-aware path signatures
  // (§4.1). kDeepPath is the paper's best performer and the default.
  SignatureScheme scheme = SignatureScheme::kDeepPath;
  // Weighted path prefix (Definition 9) instead of the plain distinct-
  // element rule; only meaningful for kDeepPath.
  bool weighted_prefix = true;
  VerifyMode verify_mode = VerifyMode::kAdaptive;
  ElementMetric element_metric = ElementMetric::kKJoin;
  SetMetric set_metric = SetMetric::kJaccard;
  bool count_pruning = true;
  bool weighted_count_pruning = true;
  // K-Join+ semantics (multi-node element mappings). Objects must then be
  // built with ObjectBuilder(matcher, /*multi_mapping=*/true).
  bool plus_mode = false;
  // Node-pair similarity cache in front of the LCA index (see
  // docs/performance.md). Join results are byte-identical with the cache
  // on or off — cached values are bit-identical to recomputation — so this
  // is purely a speed/memory trade. The capacity is the approximate
  // number of shared L2 slots (16 bytes each).
  bool sim_cache = true;
  int64_t sim_cache_capacity = int64_t{1} << 20;
  // Total parallelism for the whole pipeline — signature generation,
  // global-order sorting, prefix computation, candidate probing, and
  // verification all shard across one shared worker pool (see
  // docs/threading.md). 1 = fully sequential (no threads spawned).
  // Results and the counter fields of JoinStats are identical for every
  // value.
  int num_threads = 1;
};

// Candidate pairs, the inverted index, and the probe bookkeeping address
// objects with int32_t ids, so each input collection is limited to
// INT32_MAX objects; Join/SelfJoin refuse larger inputs (shard upstream).
inline constexpr uint64_t kMaxJoinCollectionSize =
    static_cast<uint64_t>(std::numeric_limits<int32_t>::max());

constexpr bool FitsObjectIdSpace(uint64_t collection_size) {
  return collection_size <= kMaxJoinCollectionSize;
}

// Cooperative cancellation handle for the Status-returning join entry
// points. Cancel() may be called from any thread (typically a watchdog or
// an RPC teardown path) while a join is running; the join observes it at
// the next shard-boundary poll and returns kCancelled with the pairs found
// so far. Reusable: a token outlives any number of joins.
class CancelToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const { return cancelled_.load(std::memory_order_acquire); }
  void Reset() { cancelled_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> cancelled_{false};
};

// Runtime bounds for one join invocation (docs/robustness.md). Default
// constructed = unbounded, which makes the Status overloads behave exactly
// like the legacy ones. All checks are cooperative: they happen at shard
// boundaries and every few probe/verify items, never mid-verification, so
// a pathological single pair can overshoot a deadline by one verification.
struct JoinControl {
  // Wall-clock budget in seconds, measured from the join call; <= 0 means
  // no deadline. Tripping returns kDeadlineExceeded.
  double deadline_seconds = 0.0;
  // Optional external cancel signal; not owned, may be null. Must outlive
  // the join call. Tripping returns kCancelled.
  const CancelToken* cancel_token = nullptr;
  // Approximate cap on bytes buffered for candidate pairs; <= 0 means
  // unlimited. When the buffer fills, verification is spilled early in
  // smaller batches (results stay identical); if a single adaptive chunk
  // alone overflows the budget the join gives up with kResourceExhausted.
  int64_t candidate_byte_budget = 0;
  // Cap on candidates emitted by one probe object; <= 0 means unlimited.
  // A probe exceeding it (a "hub" object matching everything) trips
  // kResourceExhausted rather than quadratically exploding the buffer.
  int64_t max_candidates_per_probe = 0;
};

// Pipeline phase in which a controlled join stopped (JoinStats::stopped_phase).
enum class JoinPhase { kNone = 0, kPrepare = 1, kFilter = 2, kVerify = 3 };
const char* JoinPhaseName(JoinPhase phase);

struct JoinStats {
  int64_t num_objects_left = 0;
  int64_t num_objects_right = 0;
  int64_t total_signatures = 0;
  int64_t prefix_signatures = 0;
  // Distinct candidate pairs produced by the filter (each verified once).
  int64_t candidates = 0;
  int64_t results = 0;
  double signature_seconds = 0.0;
  double filter_seconds = 0.0;  // candidate generation (probing + indexing)
  double verify_seconds = 0.0;
  double total_seconds = 0.0;
  VerifyStats verify;

  // ---- parallel-execution observability (docs/threading.md) ----
  // Unlike the counters above, these describe how the run was scheduled,
  // so they legitimately vary with num_threads (and the timing fields with
  // the machine).
  int threads = 1;             // options.num_threads of the run
  int64_t prepare_tasks = 0;   // pool shards in Prepare (both passes)
  int64_t filter_tasks = 0;    // probe shards in candidate generation
  int64_t verify_tasks = 0;    // verification shards (1: small-batch serial path)
  // Candidates found by each probe shard, in shard (= probe) order; their
  // spread shows filter-phase load balance.
  std::vector<int64_t> shard_candidates;
  double pool_busy_seconds = 0.0;  // summed task time across pool lanes
  // pool_busy_seconds / (threads × total_seconds): 1.0 means every lane
  // was busy for the whole join.
  double pool_utilization = 0.0;
  // SimCache traffic during the join (zero when options.sim_cache is
  // off). Hits split across per-thread L1s, so these counters — like the
  // scheduling fields above — legitimately vary with num_threads; the
  // result counters never do.
  int64_t sim_cache_hits = 0;
  int64_t sim_cache_misses = 0;
  double sim_cache_hit_rate = 0.0;  // hits / (hits + misses)

  // ---- control-plane observability (docs/robustness.md) ----
  // Phase in which the join tripped (deadline / cancel / resource guard);
  // kNone on a clean run. Like the scheduling fields, these vary with
  // num_threads and JoinControl, never the result counters above.
  JoinPhase stopped_phase = JoinPhase::kNone;
  // Shard-boundary control polls executed (0 when no control is active).
  int64_t control_polls = 0;
  // Verification batches: 1 for an unbudgeted run, more when the candidate
  // byte budget spilled verification early.
  int64_t verify_batches = 0;
  // Times the filter flushed buffered candidates into verification because
  // the byte budget filled up.
  int64_t budget_spills = 0;
};

struct JoinResult {
  // Similar pairs as indices into the input vector(s); for a self join
  // first < second.
  std::vector<std::pair<int32_t, int32_t>> pairs;
  JoinStats stats;
};

class KJoin {
 public:
  // The hierarchy must outlive the KJoin instance.
  KJoin(const Hierarchy& hierarchy, KJoinOptions options);

  // All pairs x < y with SIMδ(objects[x], objects[y]) >= τ.
  JoinResult SelfJoin(const std::vector<Object>& objects) const;

  // R-S join (§6.1): all (r, s) in R × S with SIMδ >= τ. Both collections
  // must come from the same ObjectBuilder (shared token interner).
  JoinResult Join(const std::vector<Object>& left, const std::vector<Object>& right) const;

  // Controlled entry points. With a default JoinControl they compute the
  // same result as the legacy overloads and return OK. When a bound trips
  // (kDeadlineExceeded, kCancelled, kResourceExhausted) or the input is
  // oversized (kInvalidArgument), *result holds the similar pairs proven
  // so far — a correct subset of the full answer — and
  // result->stats.stopped_phase records where the pipeline stopped. The
  // worker pool is always quiescent when these return, tripped or not.
  Status SelfJoin(const std::vector<Object>& objects, const JoinControl& control,
                  JoinResult* result) const;
  Status Join(const std::vector<Object>& left, const std::vector<Object>& right,
              const JoinControl& control, JoinResult* result) const;

  // Exact similarity under this join's configuration (no filtering).
  double ExactSimilarity(const Object& x, const Object& y) const;

  const KJoinOptions& options() const { return options_; }
  const Hierarchy& hierarchy() const { return *hierarchy_; }

 private:
  // Deadline/cancel/resource-guard state for one controlled run; defined
  // in kjoin.cc. Thread-safe: shards poll and trip it concurrently.
  class JoinController;

  // Per-object signature lists sorted by global order plus prefix length.
  // prefix_ranks[i] is object i's prefix as deduplicated global ranks
  // (ascending) — the filter phase indexes and probes through it without
  // ever re-resolving SigId -> rank hashes.
  struct Prepared {
    std::vector<std::vector<Signature>> sigs;
    std::vector<int32_t> prefix_len;
    std::vector<std::vector<int32_t>> prefix_ranks;
  };

  // Both public joins funnel here; `self` selects self-join semantics
  // (right is ignored and aliases left).
  Status JoinImpl(const std::vector<Object>& left, const std::vector<Object>& right,
                  bool self, const JoinControl& control, JoinResult* result) const;

  // Signature generation + global ordering + prefixes over one or two
  // collections. Polls `controller` at shard boundaries; on a trip the
  // returned Prepared is partial and must not be used.
  Prepared Prepare(const std::vector<const std::vector<Object>*>& collections,
                   GlobalSignatureOrder* order, JoinStats* stats,
                   JoinController* controller) const;

  int32_t PrefixLengthFor(const std::vector<Signature>& sigs, int32_t object_size) const;

  // Verifies candidate (left-index, right-index) pairs — sharded over the
  // pool when options_.num_threads > 1 and the batch is large enough —
  // and appends the similar ones to result->pairs (kept in candidate
  // order). Timing goes to verify_seconds, per-pair counters to
  // result->stats.verify. Polls `controller` inside shards and converts
  // allocation failure during verification into a kResourceExhausted trip.
  void VerifyCandidates(const std::vector<Object>& left, const std::vector<Object>& right,
                        const std::vector<std::pair<int32_t, int32_t>>& candidates,
                        JoinResult* result, JoinController* controller) const;

  // Shards `num_probes` probe objects across the pool; `probe(shard,
  // begin, end, out)` appends each probe's candidates to *out in probe
  // order. Buffers are merged back in shard order, so `candidates` ends up
  // in global probe order regardless of num_threads.
  void GenerateCandidates(
      int64_t num_probes,
      const std::function<void(int, int32_t, int32_t,
                               std::vector<std::pair<int32_t, int32_t>>*)>& probe,
      std::vector<std::pair<int32_t, int32_t>>* candidates, JoinStats* stats) const;

  // Fills stats->threads / pool_busy_seconds / pool_utilization and the
  // sim_cache_* fields from the pool and cache counters accumulated since
  // the `before` snapshots.
  void FinishStats(const ThreadPoolStats& pool_before, const SimCacheStats& cache_before,
                   JoinStats* stats) const;

  SimCacheStats CacheStats() const;

  const Hierarchy* hierarchy_;
  KJoinOptions options_;
  LcaIndex lca_;
  // Owned node-pair similarity cache; null when options_.sim_cache is
  // off. Declared before element_sim_, which captures the raw pointer.
  std::unique_ptr<SimCache> sim_cache_;
  ElementSimilarity element_sim_;
  SignatureGenerator signatures_;
  Verifier verifier_;
  // Shared worker pool for every phase; ~KJoin joins its threads. With
  // num_threads == 1 the pool is lane-less and runs shards inline.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace kjoin

#endif  // KJOIN_CORE_KJOIN_H_
