#include "text/entity_matcher.h"

#include <algorithm>
#include <memory>
#include <unordered_map>

#include "common/logging.h"
#include "common/string_util.h"
#include "text/edit_distance.h"
#include "text/tokenizer.h"

namespace kjoin {
namespace {

std::string NormalizeLabel(std::string_view label) {
  // Lower-case alphanumerics only: "BurgerKing" -> "burgerking",
  // "San Francisco" -> "sanfrancisco".
  std::string out;
  out.reserve(label.size());
  for (char c : label) {
    if (c >= 'A' && c <= 'Z') {
      out.push_back(static_cast<char>(c - 'A' + 'a'));
    } else if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

EntityMatcher::EntityMatcher(const Hierarchy& hierarchy, EntityMatcherOptions options)
    : hierarchy_(&hierarchy), options_(options) {
  KJOIN_CHECK_GT(options_.max_matches, 0);
  std::unordered_map<std::string, std::vector<NodeId>> by_label;
  for (NodeId v = 1; v < hierarchy.num_nodes(); ++v) {
    std::string normalized = NormalizeLabel(hierarchy.label(v));
    if (normalized.empty()) continue;
    by_label[std::move(normalized)].push_back(v);
  }
  entries_.reserve(by_label.size());
  for (auto& [label, nodes] : by_label) {
    entries_.push_back({label, std::move(nodes)});
  }
  std::sort(entries_.begin(), entries_.end(),
            [](const LabelEntry& a, const LabelEntry& b) { return a.normalized < b.normalized; });
}

int EntityMatcher::AddSynonym(std::string_view alias, std::string_view node_label) {
  KJOIN_CHECK(approx_index_ == nullptr) << "register synonyms before the first lookup";
  const std::string normalized_alias = NormalizeLabel(alias);
  const int32_t entry = FindEntry(NormalizeLabel(node_label));
  if (entry < 0 || normalized_alias.empty()) return 0;
  auto it = std::lower_bound(synonyms_.begin(), synonyms_.end(), normalized_alias,
                             [](const auto& a, const std::string& key) { return a.first < key; });
  if (it == synonyms_.end() || it->first != normalized_alias) {
    it = synonyms_.insert(it, {normalized_alias, {}});
  }
  for (NodeId node : entries_[entry].nodes) {
    if (std::find(it->second.begin(), it->second.end(), node) == it->second.end()) {
      it->second.push_back(node);
    }
  }
  return static_cast<int>(it->second.size());
}

int32_t EntityMatcher::FindEntry(std::string_view normalized) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), normalized,
      [](const LabelEntry& entry, std::string_view key) { return entry.normalized < key; });
  if (it == entries_.end() || it->normalized != normalized) return -1;
  return static_cast<int32_t>(it - entries_.begin());
}

void EntityMatcher::EnsureApproxIndex() const {
  if (approx_index_ != nullptr) return;
  std::vector<std::string> labels;
  labels.reserve(entries_.size());
  for (const LabelEntry& entry : entries_) labels.push_back(entry.normalized);
  approx_index_ = std::make_unique<QGramIndex>(std::move(labels), options_.qgram_q);
}

std::optional<EntityMatch> EntityMatcher::MatchOne(std::string_view token) const {
  const std::string normalized = NormalizeLabel(token);
  if (normalized.empty()) return std::nullopt;
  const int32_t entry = FindEntry(normalized);
  if (entry >= 0) return EntityMatch{entries_[entry].nodes.front(), 1.0};
  auto it = std::lower_bound(synonyms_.begin(), synonyms_.end(), normalized,
                             [](const auto& a, const std::string& key) { return a.first < key; });
  if (it != synonyms_.end() && it->first == normalized) {
    return EntityMatch{it->second.front(), 1.0};
  }
  return std::nullopt;
}

std::vector<EntityMatch> EntityMatcher::MatchAll(std::string_view token) const {
  std::vector<EntityMatch> matches;
  const std::string normalized = NormalizeLabel(token);
  if (normalized.empty()) return matches;

  auto add = [&](NodeId node, double phi) {
    for (EntityMatch& existing : matches) {
      if (existing.node == node) {
        existing.phi = std::max(existing.phi, phi);
        return;
      }
    }
    matches.push_back({node, phi});
  };

  const int32_t entry = FindEntry(normalized);
  if (entry >= 0) {
    for (NodeId node : entries_[entry].nodes) add(node, 1.0);
  }
  auto it = std::lower_bound(synonyms_.begin(), synonyms_.end(), normalized,
                             [](const auto& a, const std::string& key) { return a.first < key; });
  if (it != synonyms_.end() && it->first == normalized) {
    for (NodeId node : it->second) add(node, 1.0);
  }

  if (options_.enable_approximate) {
    EnsureApproxIndex();
    const int max_len = static_cast<int>(normalized.size());
    // φ >= min_phi constrains errors relative to the longer string; use
    // the query-side length plus that budget as the longest admissible
    // label, then verify φ per candidate.
    int budget = MaxEditErrors(max_len, options_.min_phi);
    // Longer labels allow more absolute errors; widen until stable.
    for (int iter = 0; iter < 4; ++iter) {
      const int next = MaxEditErrors(max_len + budget, options_.min_phi);
      if (next == budget) break;
      budget = next;
    }
    for (int32_t id : approx_index_->SearchWithinDistance(normalized, budget)) {
      const LabelEntry& candidate = entries_[id];
      if (candidate.normalized == normalized) continue;  // already exact
      const double phi = EditSimilarity(normalized, candidate.normalized);
      if (phi < options_.min_phi) continue;
      for (NodeId node : candidate.nodes) add(node, phi);
    }
  }

  std::sort(matches.begin(), matches.end(), [](const EntityMatch& a, const EntityMatch& b) {
    if (a.phi != b.phi) return a.phi > b.phi;
    return a.node < b.node;
  });
  if (static_cast<int>(matches.size()) > options_.max_matches) {
    matches.resize(options_.max_matches);
  }
  return matches;
}

}  // namespace kjoin
