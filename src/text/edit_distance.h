#ifndef KJOIN_TEXT_EDIT_DISTANCE_H_
#define KJOIN_TEXT_EDIT_DISTANCE_H_

// Levenshtein edit distance and normalized edit similarity.
//
// K-Join+ uses edit similarity as the mapping confidence φ(e, e') when a
// typo-carrying element approximately matches a knowledge-base node:
// φ = 1 − ED(x, y) / max(|x|, |y|) (paper §2.1.1). The FastJoin baseline
// uses the same quantity between tokens.

#include <cstdint>
#include <string_view>

namespace kjoin {

// Plain O(|x|·|y|) Levenshtein distance with two rolling rows.
int EditDistance(std::string_view x, std::string_view y);

// Banded computation: returns the exact distance if it is <= max_distance,
// otherwise any value > max_distance. O(max_distance · min(|x|,|y|)).
int EditDistanceBounded(std::string_view x, std::string_view y, int max_distance);

// 1 − ED / max(|x|, |y|); both empty => 1.
double EditSimilarity(std::string_view x, std::string_view y);

// True iff EditSimilarity(x, y) >= threshold, computed with the banded
// algorithm (the common fast path for filters).
bool EditSimilarityAtLeast(std::string_view x, std::string_view y, double threshold);

// The largest edit distance compatible with similarity >= threshold for
// strings whose longer side has length max_len:
// floor((1 − threshold) · max_len).
int MaxEditErrors(int max_len, double threshold);

}  // namespace kjoin

#endif  // KJOIN_TEXT_EDIT_DISTANCE_H_
