#include "text/edit_distance.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.h"

namespace kjoin {

int EditDistance(std::string_view x, std::string_view y) {
  if (x.size() < y.size()) std::swap(x, y);  // y is the shorter string
  const int n = static_cast<int>(x.size());
  const int m = static_cast<int>(y.size());
  if (m == 0) return n;

  std::vector<int> prev(m + 1), curr(m + 1);
  for (int j = 0; j <= m; ++j) prev[j] = j;
  for (int i = 1; i <= n; ++i) {
    curr[0] = i;
    for (int j = 1; j <= m; ++j) {
      const int substitute = prev[j - 1] + (x[i - 1] == y[j - 1] ? 0 : 1);
      curr[j] = std::min({prev[j] + 1, curr[j - 1] + 1, substitute});
    }
    std::swap(prev, curr);
  }
  return prev[m];
}

int EditDistanceBounded(std::string_view x, std::string_view y, int max_distance) {
  KJOIN_DCHECK(max_distance >= 0);
  if (x.size() < y.size()) std::swap(x, y);
  const int n = static_cast<int>(x.size());
  const int m = static_cast<int>(y.size());
  if (n - m > max_distance) return max_distance + 1;
  if (m == 0) return n;

  // Band of half-width max_distance around the diagonal. Cells outside the
  // band are treated as > max_distance.
  const int kBig = max_distance + 1;
  std::vector<int> prev(m + 1, kBig), curr(m + 1, kBig);
  for (int j = 0; j <= std::min(m, max_distance); ++j) prev[j] = j;
  for (int i = 1; i <= n; ++i) {
    const int lo = std::max(1, i - max_distance);
    const int hi = std::min(m, i + max_distance);
    if (lo > hi) return kBig;
    std::fill(curr.begin(), curr.end(), kBig);
    if (lo == 1 && i <= max_distance) curr[0] = i;
    int row_min = kBig;
    for (int j = lo; j <= hi; ++j) {
      const int substitute = prev[j - 1] + (x[i - 1] == y[j - 1] ? 0 : 1);
      const int del = prev[j] + 1;
      const int ins = curr[j - 1] + 1;
      curr[j] = std::min({substitute, del, ins, kBig});
      row_min = std::min(row_min, curr[j]);
    }
    if (row_min > max_distance) return kBig;  // early exit: band exhausted
    std::swap(prev, curr);
  }
  return prev[m];
}

double EditSimilarity(std::string_view x, std::string_view y) {
  const size_t max_len = std::max(x.size(), y.size());
  if (max_len == 0) return 1.0;
  return 1.0 - static_cast<double>(EditDistance(x, y)) / static_cast<double>(max_len);
}

bool EditSimilarityAtLeast(std::string_view x, std::string_view y, double threshold) {
  const int max_len = static_cast<int>(std::max(x.size(), y.size()));
  if (max_len == 0) return true;
  if (threshold <= 0.0) return true;
  const int budget = MaxEditErrors(max_len, threshold);
  return EditDistanceBounded(x, y, budget) <= budget;
}

int MaxEditErrors(int max_len, double threshold) {
  if (threshold <= 0.0) return max_len;
  const double budget = (1.0 - threshold) * max_len;
  // Guard against 0.30000000000000004-style float noise just above an
  // integral budget.
  return std::max(0, static_cast<int>(std::floor(budget + 1e-9)));
}

}  // namespace kjoin
