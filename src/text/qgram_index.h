#ifndef KJOIN_TEXT_QGRAM_INDEX_H_
#define KJOIN_TEXT_QGRAM_INDEX_H_

// A q-gram inverted index for approximate string lookup.
//
// Used by the entity matcher (mapping typo-carrying tokens onto
// knowledge-base labels, paper §2.1.1) and by the FastJoin baseline. Uses
// padded q-grams: the string is framed with q−1 sentinel characters on
// each side, giving |s| + q − 1 grams, so the classic count filter
//   ED(x, y) <= e  =>  |grams(x) ∩ grams(y)| >= max(|x|,|y|) + q − 1 − q·e
// holds for strings of any length >= 1.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace kjoin {

class QGramIndex {
 public:
  // Indexes `strings` (ids are positions in the vector). q >= 1.
  QGramIndex(std::vector<std::string> strings, int q = 2);

  int q() const { return q_; }
  int64_t num_strings() const { return static_cast<int64_t>(strings_.size()); }
  const std::string& string_at(int32_t id) const { return strings_[id]; }

  // Ids of indexed strings whose edit distance to `query` *may* be
  // <= max_errors (count filter + length filter; no verification).
  std::vector<int32_t> Candidates(std::string_view query, int max_errors) const;

  // Candidates verified with the banded edit-distance algorithm; every
  // returned id is truly within max_errors.
  std::vector<int32_t> SearchWithinDistance(std::string_view query, int max_errors) const;

  // The padded q-grams of `text` (exposed for tests and FastJoin).
  static std::vector<std::string> PaddedQGrams(std::string_view text, int q);

 private:
  int q_;
  std::vector<std::string> strings_;
  // gram -> sorted (string id, gram multiplicity) pairs; vector sorted by
  // gram for binary search.
  std::vector<std::pair<std::string, std::vector<std::pair<int32_t, int32_t>>>> postings_;
  const std::vector<std::pair<int32_t, int32_t>>* Postings(const std::string& gram) const;
};

}  // namespace kjoin

#endif  // KJOIN_TEXT_QGRAM_INDEX_H_
