#include "text/qgram_index.h"

#include <algorithm>
#include <cstdlib>
#include <unordered_map>

#include "common/logging.h"
#include "text/edit_distance.h"

namespace kjoin {
namespace {

constexpr char kLeftPad = '\x01';
constexpr char kRightPad = '\x02';

// gram -> multiplicity within one string.
std::unordered_map<std::string, int32_t> GramMultiset(std::string_view text, int q) {
  std::unordered_map<std::string, int32_t> multiset;
  for (std::string& gram : QGramIndex::PaddedQGrams(text, q)) ++multiset[std::move(gram)];
  return multiset;
}

}  // namespace

std::vector<std::string> QGramIndex::PaddedQGrams(std::string_view text, int q) {
  KJOIN_CHECK_GE(q, 1);
  std::string padded;
  padded.reserve(text.size() + 2 * (q - 1));
  padded.append(q - 1, kLeftPad);
  padded.append(text);
  padded.append(q - 1, kRightPad);
  std::vector<std::string> grams;
  if (padded.size() < static_cast<size_t>(q)) return grams;
  grams.reserve(padded.size() - q + 1);
  for (size_t i = 0; i + q <= padded.size(); ++i) grams.push_back(padded.substr(i, q));
  return grams;
}

QGramIndex::QGramIndex(std::vector<std::string> strings, int q)
    : q_(q), strings_(std::move(strings)) {
  KJOIN_CHECK_GE(q, 1);
  std::unordered_map<std::string, std::vector<std::pair<int32_t, int32_t>>> map;
  for (int32_t id = 0; id < static_cast<int32_t>(strings_.size()); ++id) {
    for (const auto& [gram, mult] : GramMultiset(strings_[id], q_)) {
      map[gram].emplace_back(id, mult);
    }
  }
  postings_.reserve(map.size());
  for (auto& [gram, ids] : map) {
    std::sort(ids.begin(), ids.end());
    postings_.emplace_back(gram, std::move(ids));
  }
  std::sort(postings_.begin(), postings_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
}

const std::vector<std::pair<int32_t, int32_t>>* QGramIndex::Postings(
    const std::string& gram) const {
  auto it = std::lower_bound(
      postings_.begin(), postings_.end(), gram,
      [](const auto& entry, const std::string& key) { return entry.first < key; });
  if (it == postings_.end() || it->first != gram) return nullptr;
  return &it->second;
}

std::vector<int32_t> QGramIndex::Candidates(std::string_view query, int max_errors) const {
  KJOIN_CHECK_GE(max_errors, 0);
  const int query_len = static_cast<int>(query.size());
  std::vector<int32_t> result;

  // If the count-filter bound can reach <= 0 for some admissible length,
  // it is vacuous: fall back to the plain length filter.
  if (query_len + q_ - 1 - q_ * max_errors <= 0) {
    for (int32_t id = 0; id < static_cast<int32_t>(strings_.size()); ++id) {
      if (std::abs(static_cast<int>(strings_[id].size()) - query_len) <= max_errors) {
        result.push_back(id);
      }
    }
    return result;
  }

  // Exact multiset q-gram intersection sizes via merged postings.
  std::unordered_map<int32_t, int32_t> common;
  for (const auto& [gram, query_mult] : GramMultiset(query, q_)) {
    const auto* ids = Postings(gram);
    if (ids == nullptr) continue;
    for (const auto& [id, mult] : *ids) common[id] += std::min(query_mult, mult);
  }
  for (const auto& [id, overlap] : common) {
    const int cand_len = static_cast<int>(strings_[id].size());
    if (std::abs(cand_len - query_len) > max_errors) continue;
    const int required = std::max(cand_len, query_len) + q_ - 1 - q_ * max_errors;
    if (overlap >= required) result.push_back(id);
  }
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<int32_t> QGramIndex::SearchWithinDistance(std::string_view query,
                                                      int max_errors) const {
  std::vector<int32_t> result;
  for (int32_t id : Candidates(query, max_errors)) {
    if (EditDistanceBounded(query, strings_[id], max_errors) <= max_errors) {
      result.push_back(id);
    }
  }
  return result;
}

}  // namespace kjoin
