#ifndef KJOIN_TEXT_TOKENIZER_H_
#define KJOIN_TEXT_TOKENIZER_H_

// Record tokenization and normalization.
//
// The paper models an object as the set of elements obtained by tokenizing
// the record (§2.1). Tokens are normalized (ASCII lower-case, punctuation
// stripped) before entity matching so that "Pizza," and "pizza" map to the
// same knowledge-base node.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace kjoin {

struct TokenizerOptions {
  bool lowercase = true;
  // Characters other than [a-z0-9] become separators when true; otherwise
  // only whitespace separates tokens.
  bool strip_punctuation = true;
  // Tokens shorter than this are dropped (0 keeps everything).
  int min_token_length = 1;
  // Limits enforced by TokenizeChecked only (0 = unlimited): untrusted
  // records exceeding them are rejected instead of ballooning memory.
  int64_t max_tokens = 0;
  int64_t max_token_length = 0;
};

class Tokenizer {
 public:
  explicit Tokenizer(TokenizerOptions options = {});

  // Splits and normalizes. Duplicate tokens are preserved: the paper's
  // object model is a multiset (its Table 1 objects carry duplicate
  // signatures).
  std::vector<std::string> Tokenize(std::string_view text) const;

  // Tokenize for untrusted input: additionally rejects text that is not
  // valid UTF-8 (kInvalidArgument) and enforces the options' max_tokens /
  // max_token_length limits (kResourceExhausted). Trusted callers keep
  // the zero-overhead Tokenize above.
  StatusOr<std::vector<std::string>> TokenizeChecked(std::string_view text) const;

  // Normalizes one token (no splitting).
  std::string Normalize(std::string_view token) const;

 private:
  TokenizerOptions options_;
};

}  // namespace kjoin

#endif  // KJOIN_TEXT_TOKENIZER_H_
