#include "text/tokenizer.h"

#include <cctype>

#include "common/string_util.h"

namespace kjoin {
namespace {

bool IsTokenChar(char c, bool strip_punctuation) {
  const unsigned char u = static_cast<unsigned char>(c);
  if (strip_punctuation) return std::isalnum(u) != 0;
  return std::isspace(u) == 0;
}

}  // namespace

Tokenizer::Tokenizer(TokenizerOptions options) : options_(options) {}

std::vector<std::string> Tokenizer::Tokenize(std::string_view text) const {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&]() {
    if (static_cast<int>(current.size()) >= options_.min_token_length && !current.empty()) {
      tokens.push_back(current);
    }
    current.clear();
  };
  for (char c : text) {
    if (IsTokenChar(c, options_.strip_punctuation)) {
      if (options_.lowercase && c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
      current.push_back(c);
    } else {
      flush();
    }
  }
  flush();
  return tokens;
}

StatusOr<std::vector<std::string>> Tokenizer::TokenizeChecked(std::string_view text) const {
  if (!IsValidUtf8(text)) {
    return InvalidArgumentError("text is not valid UTF-8");
  }
  std::vector<std::string> tokens = Tokenize(text);
  if (options_.max_tokens > 0 &&
      static_cast<int64_t>(tokens.size()) > options_.max_tokens) {
    return ResourceExhaustedError("record has " + std::to_string(tokens.size()) +
                                  " tokens, limit " +
                                  std::to_string(options_.max_tokens));
  }
  if (options_.max_token_length > 0) {
    for (const std::string& token : tokens) {
      if (static_cast<int64_t>(token.size()) > options_.max_token_length) {
        return ResourceExhaustedError(
            "token of " + std::to_string(token.size()) + " bytes exceeds limit " +
            std::to_string(options_.max_token_length));
      }
    }
  }
  return tokens;
}

std::string Tokenizer::Normalize(std::string_view token) const {
  std::string out;
  out.reserve(token.size());
  for (char c : token) {
    if (!IsTokenChar(c, options_.strip_punctuation)) continue;
    if (options_.lowercase && c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
    out.push_back(c);
  }
  return out;
}

}  // namespace kjoin
