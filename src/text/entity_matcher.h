#ifndef KJOIN_TEXT_ENTITY_MATCHER_H_
#define KJOIN_TEXT_ENTITY_MATCHER_H_

// Mapping record tokens onto knowledge-hierarchy nodes.
//
// K-Join assumes each element maps to a single tree node (exact label
// match); K-Join+ lets an element map to multiple nodes through three
// channels (paper §2.1.1 and §6.4):
//   1. ambiguity — several nodes share the surface form (e.g. after a
//      DAG was unfolded into a tree);
//   2. synonyms — registered aliases map with confidence φ = 1;
//   3. typos — approximate label matches with φ = normalized edit
//      similarity, kept when φ >= min_phi.
// Tokens that match nothing are still elements (they can only match an
// identical token on the other side).

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "hierarchy/hierarchy.h"
#include "text/qgram_index.h"

namespace kjoin {

// One candidate node for a token, with the mapping confidence φ.
struct EntityMatch {
  NodeId node = kInvalidNode;
  double phi = 0.0;

  friend bool operator==(const EntityMatch&, const EntityMatch&) = default;
};

struct EntityMatcherOptions {
  // Minimum φ for approximate matches; also the default element threshold
  // δ is a sensible value here, since lower-φ mappings can never produce
  // a δ-similar pair on their own.
  double min_phi = 0.6;
  // Approximate (typo) matching on/off; off = exact + synonyms only.
  bool enable_approximate = true;
  // q for the q-gram index behind approximate matching.
  int qgram_q = 2;
  // Cap on mappings returned per token (highest φ first).
  int max_matches = 8;
};

class EntityMatcher {
 public:
  // Indexes every node label except the root. Labels are normalized to
  // lower-case alphanumerics for lookup. The hierarchy must outlive the
  // matcher. Call AddSynonym before the first Match* call.
  EntityMatcher(const Hierarchy& hierarchy, EntityMatcherOptions options = {});

  // Registers `alias` as a synonym of every node labeled `node_label`
  // (φ = 1). Returns the number of nodes the alias now points at.
  int AddSynonym(std::string_view alias, std::string_view node_label);

  // K-Join mode: the single best mapping — exact label match first, then
  // synonym; approximate matches are not used in single mode (the paper's
  // K-Join maps an element to one node or none). nullopt when unmatched.
  std::optional<EntityMatch> MatchOne(std::string_view token) const;

  // K-Join+ mode: all mappings (exact + synonyms + approximate), sorted
  // by φ descending then NodeId, truncated to options.max_matches.
  std::vector<EntityMatch> MatchAll(std::string_view token) const;

  const Hierarchy& hierarchy() const { return *hierarchy_; }

 private:
  struct LabelEntry {
    std::string normalized;
    std::vector<NodeId> nodes;
  };

  // Index of `normalized` in entries_, or -1.
  int32_t FindEntry(std::string_view normalized) const;
  void EnsureApproxIndex() const;

  const Hierarchy* hierarchy_;
  EntityMatcherOptions options_;
  std::vector<LabelEntry> entries_;  // sorted by normalized label
  // alias (normalized) -> nodes; sorted by alias.
  std::vector<std::pair<std::string, std::vector<NodeId>>> synonyms_;
  // Lazily built q-gram index over entries_ labels (mutable: built on
  // first approximate lookup, after synonyms are registered).
  mutable std::unique_ptr<QGramIndex> approx_index_;
};

}  // namespace kjoin

#endif  // KJOIN_TEXT_ENTITY_MATCHER_H_
