#ifndef KJOIN_MATCHING_BOUNDS_H_
#define KJOIN_MATCHING_BOUNDS_H_

// Upper bound on the maximum-weight matching (paper §5.2.1, Eq. 6).

#include "matching/bigraph.h"

namespace kjoin {

// Bu = min( Σ_left max-incident-weight, Σ_right max-incident-weight ).
// Every matching covers each vertex at most once with at most its
// heaviest incident edge, so both sums dominate the optimum.
double PerVertexUpperBound(const Bigraph& graph);

}  // namespace kjoin

#endif  // KJOIN_MATCHING_BOUNDS_H_
