#ifndef KJOIN_MATCHING_BOUNDS_H_
#define KJOIN_MATCHING_BOUNDS_H_

// Upper bound on the maximum-weight matching (paper §5.2.1, Eq. 6).

#include <vector>

#include "matching/bigraph.h"

namespace kjoin {

// Reusable per-vertex max buffers so the hot path computes the bound with
// zero allocations (buffers grow to the largest group seen).
struct BoundScratch {
  std::vector<double> left_best;
  std::vector<double> right_best;
};

// Bu = min( Σ_left max-incident-weight, Σ_right max-incident-weight ).
// Every matching covers each vertex at most once with at most its
// heaviest incident edge, so both sums dominate the optimum. Single pass
// over edges(); does not touch the graph's adjacency.
double PerVertexUpperBound(const Bigraph& graph, BoundScratch* scratch);

// Convenience overload with a local scratch (tests, one-off callers).
double PerVertexUpperBound(const Bigraph& graph);

}  // namespace kjoin

#endif  // KJOIN_MATCHING_BOUNDS_H_
