#ifndef KJOIN_MATCHING_GREEDY_MATCHING_H_
#define KJOIN_MATCHING_GREEDY_MATCHING_H_

// Greedy lower bounds for the maximum-weight matching (paper §5.2.2).
//
// The adaptive verifier avoids running the Hungarian algorithm on a
// subgraph whenever a cheap lower bound already certifies the candidate
// (accept) or a cheap upper bound already refutes it (reject). Any greedy
// matching is a valid lower bound because the optimum can only be larger.

#include <cstdint>
#include <vector>

#include "matching/bigraph.h"

namespace kjoin {

// Reusable buffers for the greedy bounds (edge ordering + used-vertex
// marks); allocation-free once grown to the largest group seen.
struct GreedyScratch {
  std::vector<int32_t> order;
  std::vector<char> left_used;
  std::vector<char> right_used;
};

// `lw`: repeatedly takes the heaviest remaining edge and removes its two
// endpoints. O(|E| log |E|).
double GreedyMaxWeightLowerBound(const Bigraph& graph, GreedyScratch* scratch);
double GreedyMaxWeightLowerBound(const Bigraph& graph);

// `le`: repeatedly takes the left vertex with the smallest remaining
// degree, matches it to its smallest-degree right neighbour, and removes
// both — covering as many vertices as possible.
double GreedyMinDegreeLowerBound(const Bigraph& graph, GreedyScratch* scratch);
double GreedyMinDegreeLowerBound(const Bigraph& graph);

// max(lw, le) — the combined bound Bl of §5.2.2.
double CombinedLowerBound(const Bigraph& graph, GreedyScratch* scratch);
double CombinedLowerBound(const Bigraph& graph);

}  // namespace kjoin

#endif  // KJOIN_MATCHING_GREEDY_MATCHING_H_
