#include "matching/bigraph.h"

#include <algorithm>

#include "common/logging.h"

namespace kjoin {

Bigraph::Bigraph(int32_t num_left, int32_t num_right) { Reset(num_left, num_right); }

void Bigraph::Reset(int32_t num_left, int32_t num_right) {
  KJOIN_CHECK_GE(num_left, 0);
  KJOIN_CHECK_GE(num_right, 0);
  num_left_ = num_left;
  num_right_ = num_right;
  edges_.clear();
  adjacency_built_ = false;
}

void Bigraph::AddEdge(int32_t left, int32_t right, double weight) {
  KJOIN_DCHECK(left >= 0 && left < num_left_);
  KJOIN_DCHECK(right >= 0 && right < num_right_);
  edges_.push_back({left, right, weight});
  adjacency_built_ = false;
}

void Bigraph::EnsureAdjacency() const {
  if (!adjacency_built_) BuildAdjacency();
}

size_t Bigraph::RetainedBytes() const {
  return edges_.capacity() * sizeof(BigraphEdge) +
         (left_offsets_.capacity() + left_adj_.capacity() + right_offsets_.capacity() +
          right_adj_.capacity()) *
             sizeof(int32_t);
}

void Bigraph::BuildAdjacency() const {
  // Counting sort of edge indices by endpoint: one degree pass, one prefix
  // sum, one scatter pass. Within a vertex, edges keep insertion order —
  // the same order the old per-vertex push_back layout produced.
  left_offsets_.assign(static_cast<size_t>(num_left_) + 1, 0);
  right_offsets_.assign(static_cast<size_t>(num_right_) + 1, 0);
  for (const BigraphEdge& edge : edges_) {
    ++left_offsets_[edge.left + 1];
    ++right_offsets_[edge.right + 1];
  }
  for (int32_t l = 0; l < num_left_; ++l) left_offsets_[l + 1] += left_offsets_[l];
  for (int32_t r = 0; r < num_right_; ++r) right_offsets_[r + 1] += right_offsets_[r];
  left_adj_.resize(edges_.size());
  right_adj_.resize(edges_.size());
  // Scatter with running cursors; rebuild the prefix sums afterwards by
  // shifting (cursor[v] ends at offsets[v + 1]).
  for (size_t e = 0; e < edges_.size(); ++e) {
    left_adj_[left_offsets_[edges_[e].left]++] = static_cast<int32_t>(e);
    right_adj_[right_offsets_[edges_[e].right]++] = static_cast<int32_t>(e);
  }
  for (int32_t l = num_left_; l > 0; --l) left_offsets_[l] = left_offsets_[l - 1];
  for (int32_t r = num_right_; r > 0; --r) right_offsets_[r] = right_offsets_[r - 1];
  left_offsets_[0] = 0;
  right_offsets_[0] = 0;
  adjacency_built_ = true;
}

}  // namespace kjoin
