#include "matching/bigraph.h"

#include "common/logging.h"

namespace kjoin {

Bigraph::Bigraph(int32_t num_left, int32_t num_right)
    : num_left_(num_left), num_right_(num_right) {
  KJOIN_CHECK_GE(num_left, 0);
  KJOIN_CHECK_GE(num_right, 0);
  left_edges_.resize(num_left);
  right_edges_.resize(num_right);
}

void Bigraph::AddEdge(int32_t left, int32_t right, double weight) {
  KJOIN_DCHECK(left >= 0 && left < num_left_);
  KJOIN_DCHECK(right >= 0 && right < num_right_);
  const int32_t edge_index = static_cast<int32_t>(edges_.size());
  edges_.push_back({left, right, weight});
  left_edges_[left].push_back(edge_index);
  right_edges_[right].push_back(edge_index);
}

}  // namespace kjoin
