#ifndef KJOIN_MATCHING_BIGRAPH_H_
#define KJOIN_MATCHING_BIGRAPH_H_

// A weighted bipartite graph between the elements of two objects.
//
// K-Join defines the fuzzy overlap of two objects (Definition 2) as the
// maximum-weight matching of the bigraph whose edges connect δ-similar
// element pairs, weighted by their knowledge-aware similarity. This type
// is the shared input of the Hungarian solver, the greedy lower bounds and
// the per-vertex upper bound.
//
// Storage is allocation-light for the verifier hot path: AddEdge only
// appends to one flat edge array, and the per-vertex adjacency is a CSR
// (offsets + edge indices) materialized lazily on the first left_edges /
// right_edges call via a counting sort. Reset() rewinds the graph for a
// new (num_left, num_right) shape while keeping every buffer's capacity,
// so a thread-local Bigraph verifies millions of candidate pairs without
// touching the allocator.
//
// Thread-compatibility: like std::vector, a Bigraph may be read from many
// threads only if no thread mutates it — and the lazy adjacency build is a
// mutation. Call EnsureAdjacency() before sharing a graph read-only across
// threads. The join pipeline never shares one (graphs are per-candidate,
// thread-local scratch).

#include <cstdint>
#include <span>
#include <vector>

namespace kjoin {

struct BigraphEdge {
  int32_t left;    // index into the left vertex set
  int32_t right;   // index into the right vertex set
  double weight;   // element similarity, in (0, 1]
};

class Bigraph {
 public:
  Bigraph() = default;
  Bigraph(int32_t num_left, int32_t num_right);

  // Re-shapes the graph to (num_left, num_right) with no edges, keeping
  // the capacity of every internal buffer.
  void Reset(int32_t num_left, int32_t num_right);

  void AddEdge(int32_t left, int32_t right, double weight);

  int32_t num_left() const { return num_left_; }
  int32_t num_right() const { return num_right_; }
  const std::vector<BigraphEdge>& edges() const { return edges_; }

  // Edges incident to a left vertex (indices into edges()). Builds the CSR
  // adjacency on first use after a mutation.
  std::span<const int32_t> left_edges(int32_t left) const {
    EnsureAdjacency();
    return {left_adj_.data() + left_offsets_[left],
            static_cast<size_t>(left_offsets_[left + 1] - left_offsets_[left])};
  }
  std::span<const int32_t> right_edges(int32_t right) const {
    EnsureAdjacency();
    return {right_adj_.data() + right_offsets_[right],
            static_cast<size_t>(right_offsets_[right + 1] - right_offsets_[right])};
  }

  int32_t left_degree(int32_t left) const {
    EnsureAdjacency();
    return left_offsets_[left + 1] - left_offsets_[left];
  }
  int32_t right_degree(int32_t right) const {
    EnsureAdjacency();
    return right_offsets_[right + 1] - right_offsets_[right];
  }

  // Materializes the CSR adjacency now (e.g. before sharing the graph
  // read-only across threads). Idempotent.
  void EnsureAdjacency() const;

  // Approximate retained footprint across all internal buffers, for the
  // verifier's scratch-capacity clamping.
  size_t RetainedBytes() const;

 private:
  void BuildAdjacency() const;

  int32_t num_left_ = 0;
  int32_t num_right_ = 0;
  std::vector<BigraphEdge> edges_;
  // Lazy CSR adjacency: offsets are prefix sums of vertex degrees, adj
  // arrays hold edge indices grouped by vertex in insertion order.
  mutable bool adjacency_built_ = false;
  mutable std::vector<int32_t> left_offsets_, left_adj_;
  mutable std::vector<int32_t> right_offsets_, right_adj_;
};

}  // namespace kjoin

#endif  // KJOIN_MATCHING_BIGRAPH_H_
