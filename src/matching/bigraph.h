#ifndef KJOIN_MATCHING_BIGRAPH_H_
#define KJOIN_MATCHING_BIGRAPH_H_

// A weighted bipartite graph between the elements of two objects.
//
// K-Join defines the fuzzy overlap of two objects (Definition 2) as the
// maximum-weight matching of the bigraph whose edges connect δ-similar
// element pairs, weighted by their knowledge-aware similarity. This type
// is the shared input of the Hungarian solver, the greedy lower bounds and
// the per-vertex upper bound.

#include <cstdint>
#include <vector>

namespace kjoin {

struct BigraphEdge {
  int32_t left;    // index into the left vertex set
  int32_t right;   // index into the right vertex set
  double weight;   // element similarity, in (0, 1]
};

class Bigraph {
 public:
  Bigraph(int32_t num_left, int32_t num_right);

  void AddEdge(int32_t left, int32_t right, double weight);

  int32_t num_left() const { return num_left_; }
  int32_t num_right() const { return num_right_; }
  const std::vector<BigraphEdge>& edges() const { return edges_; }

  // Edges incident to a left vertex (indices into edges()).
  const std::vector<int32_t>& left_edges(int32_t left) const { return left_edges_[left]; }
  const std::vector<int32_t>& right_edges(int32_t right) const { return right_edges_[right]; }

  int32_t left_degree(int32_t left) const {
    return static_cast<int32_t>(left_edges_[left].size());
  }
  int32_t right_degree(int32_t right) const {
    return static_cast<int32_t>(right_edges_[right].size());
  }

 private:
  int32_t num_left_;
  int32_t num_right_;
  std::vector<BigraphEdge> edges_;
  std::vector<std::vector<int32_t>> left_edges_;
  std::vector<std::vector<int32_t>> right_edges_;
};

}  // namespace kjoin

#endif  // KJOIN_MATCHING_BIGRAPH_H_
