#include "matching/hungarian.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace kjoin {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// The thread-local fallback scratch is dropped once it retains more than
// this many bytes, so one pathological matching cannot pin a peak-sized
// arena in every thread for the rest of the process.
constexpr size_t kMaxRetainedScratchBytes = size_t{4} << 20;

}  // namespace

size_t HungarianScratch::RetainedBytes() const {
  return (row_offsets_.capacity() + col_.capacity() + col_stamp_.capacity() +
          col_pos_.capacity() + p_.capacity() + way_.capacity() + touched_.capacity()) *
             sizeof(int32_t) +
         (cost_.capacity() + u_.capacity() + v_.capacity() + minv_.capacity()) *
             sizeof(double) +
         used_.capacity() * sizeof(char);
}

void HungarianScratch::Release() {
  row_offsets_ = {};
  col_ = {};
  cost_ = {};
  col_stamp_ = {};
  col_pos_ = {};
  u_ = {};
  v_ = {};
  minv_ = {};
  p_ = {};
  way_ = {};
  touched_ = {};
  used_ = {};
}

double MaxWeightMatching(const Bigraph& graph, HungarianScratch* scratch,
                         std::vector<std::pair<int32_t, int32_t>>* matched) {
  KJOIN_DCHECK(scratch != nullptr);
  if (matched != nullptr) matched->clear();
  const int32_t n = graph.num_left();
  const int32_t m_real = graph.num_right();
  if (n == 0 || m_real == 0 || graph.edges().empty()) return 0.0;

  // Columns are 1-based; 0 is the virtual root of the alternating tree.
  // Real columns are [1, m_real]; column m_real + i is row i's private
  // zero-cost dummy, which lets the row stay effectively unmatched and
  // guarantees every augmentation terminates at an unmatched column.
  const int32_t m = m_real + n;
  HungarianScratch& s = *scratch;

  // Build the CSR rows: deduplicated real edges (cost = -weight, keeping
  // the best parallel edge) followed by the row's dummy.
  const size_t max_entries = graph.edges().size() + static_cast<size_t>(n);
  int32_t* row_offsets = s.Ensure(&s.row_offsets_, static_cast<size_t>(n) + 1);
  int32_t* col = s.Ensure(&s.col_, max_entries);
  double* cost = s.Ensure(&s.cost_, max_entries);
  int32_t* col_stamp = s.Ensure(&s.col_stamp_, static_cast<size_t>(m_real) + 1);
  int32_t* col_pos = s.Ensure(&s.col_pos_, static_cast<size_t>(m_real) + 1);
  std::fill(col_stamp, col_stamp + m_real + 1, int32_t{-1});
  int32_t entries = 0;
  for (int32_t l = 0; l < n; ++l) {
    row_offsets[l] = entries;
    for (int32_t e : graph.left_edges(l)) {
      const BigraphEdge& edge = graph.edges()[e];
      const int32_t j = edge.right + 1;
      if (col_stamp[j] == l) {
        cost[col_pos[j]] = std::min(cost[col_pos[j]], -edge.weight);
        continue;
      }
      col_stamp[j] = l;
      col_pos[j] = entries;
      col[entries] = j;
      cost[entries] = -edge.weight;
      ++entries;
    }
    col[entries] = m_real + 1 + l;  // the dummy, cost 0
    cost[entries] = 0.0;
    ++entries;
  }
  row_offsets[n] = entries;

  double* u = s.Ensure(&s.u_, static_cast<size_t>(n) + 1);
  double* v = s.Ensure(&s.v_, static_cast<size_t>(m) + 1);
  double* minv = s.Ensure(&s.minv_, static_cast<size_t>(m) + 1);
  int32_t* p = s.Ensure(&s.p_, static_cast<size_t>(m) + 1);
  int32_t* way = s.Ensure(&s.way_, static_cast<size_t>(m) + 1);
  char* used = s.Ensure(&s.used_, static_cast<size_t>(m) + 1);
  std::fill(u, u + n + 1, 0.0);
  std::fill(v, v + m + 1, 0.0);
  std::fill(minv, minv + m + 1, kInf);
  std::fill(p, p + m + 1, int32_t{0});
  std::fill(used, used + m + 1, char{0});
  std::vector<int32_t>& touched = s.touched_;

  for (int32_t i = 1; i <= n; ++i) {
    p[0] = i;
    int32_t j0 = 0;
    touched.clear();
    do {
      used[j0] = 1;
      const int32_t i0 = p[j0];
      // Relax only the current row's real edges and its dummy; columns the
      // tree has never reached keep minv = +inf and are skipped below.
      const double ui0 = u[i0];
      for (int32_t k = row_offsets[i0 - 1]; k < row_offsets[i0]; ++k) {
        const int32_t j = col[k];
        if (used[j]) continue;
        const double cur = cost[k] - ui0 - v[j];
        if (cur < minv[j]) {
          if (minv[j] == kInf) touched.push_back(j);
          minv[j] = cur;
          way[j] = j0;
        }
      }
      double delta = kInf;
      int32_t j1 = -1;
      for (int32_t j : touched) {
        if (!used[j] && minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      KJOIN_DCHECK(j1 != -1);
      // Dual update over the tree: the root and every touched column.
      // Untouched columns keep minv = +inf, which the dense formulation
      // also leaves at +inf (inf - delta), so skipping them is exact.
      u[p[0]] += delta;
      v[0] -= delta;
      for (int32_t j : touched) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      const int32_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
    // Rewind the per-row state through the touched list — never a full
    // O(m) sweep, and no allocation.
    for (int32_t j : touched) {
      minv[j] = kInf;
      used[j] = 0;
    }
    used[0] = 0;
  }

  double total = 0.0;
  for (int32_t j = 1; j <= m_real; ++j) {
    const int32_t i = p[j];
    if (i == 0) continue;
    double weight = 0.0;
    for (int32_t k = row_offsets[i - 1]; k < row_offsets[i]; ++k) {
      if (col[k] == j) {
        weight = -cost[k];
        break;
      }
    }
    if (weight > 0.0) {
      total += weight;
      if (matched != nullptr) matched->emplace_back(i - 1, j - 1);
    }
  }
  return total;
}

double MaxWeightMatching(const Bigraph& graph,
                         std::vector<std::pair<int32_t, int32_t>>* matched) {
  static thread_local HungarianScratch scratch;
  const double total = MaxWeightMatching(graph, &scratch, matched);
  if (scratch.RetainedBytes() > kMaxRetainedScratchBytes) scratch.Release();
  return total;
}

double MaxWeightMatchingDense(const Bigraph& graph,
                              std::vector<std::pair<int32_t, int32_t>>* matched) {
  if (matched != nullptr) matched->clear();
  const int n = graph.num_left();
  const int m_real = graph.num_right();
  if (n == 0 || m_real == 0 || graph.edges().empty()) return 0.0;

  // Minimize cost = -weight over an n x (m_real + n) matrix; the n dummy
  // columns (cost 0) let every row stay effectively unmatched.
  const int m = m_real + n;
  std::vector<double> cost(static_cast<size_t>(n) * m, 0.0);
  for (const BigraphEdge& edge : graph.edges()) {
    double& cell = cost[static_cast<size_t>(edge.left) * m + edge.right];
    cell = std::min(cell, -edge.weight);  // keep the best parallel edge
  }

  // 1-based rows/columns; p[j] = row matched to column j (0 = none). The
  // per-row minv/used buffers are hoisted out of the row loop and rewound
  // with fill() — the augmentation loop itself never allocates.
  std::vector<double> u(n + 1, 0.0), v(m + 1, 0.0);
  std::vector<int> p(m + 1, 0), way(m + 1, 0);
  std::vector<double> minv(m + 1, kInf);
  std::vector<char> used(m + 1, 0);
  for (int i = 1; i <= n; ++i) {
    p[0] = i;
    int j0 = 0;
    do {
      used[j0] = 1;
      const int i0 = p[j0];
      double delta = kInf;
      int j1 = -1;
      const double* row = cost.data() + static_cast<size_t>(i0 - 1) * m;
      for (int j = 1; j <= m; ++j) {
        if (used[j]) continue;
        const double cur = row[j - 1] - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      KJOIN_DCHECK(j1 != -1);
      for (int j = 0; j <= m; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      const int j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
    std::fill(minv.begin(), minv.end(), kInf);
    std::fill(used.begin(), used.end(), char{0});
  }

  double total = 0.0;
  for (int j = 1; j <= m_real; ++j) {
    const int i = p[j];
    if (i == 0) continue;
    const double weight = -cost[static_cast<size_t>(i - 1) * m + (j - 1)];
    if (weight > 0.0) {
      total += weight;
      if (matched != nullptr) matched->emplace_back(i - 1, j - 1);
    }
  }
  return total;
}

namespace {

// Recursively assigns left vertices [index..n) given the used-right mask.
double BruteForceFrom(const Bigraph& graph, int32_t index, uint32_t used_right) {
  if (index >= graph.num_left()) return 0.0;
  // Option 1: leave `index` unmatched.
  double best = BruteForceFrom(graph, index + 1, used_right);
  for (int32_t e : graph.left_edges(index)) {
    const BigraphEdge& edge = graph.edges()[e];
    if ((used_right >> edge.right) & 1u) continue;
    best = std::max(best, edge.weight + BruteForceFrom(graph, index + 1,
                                                       used_right | (1u << edge.right)));
  }
  return best;
}

}  // namespace

double MaxWeightMatchingBruteForce(const Bigraph& graph) {
  KJOIN_CHECK_LE(graph.num_right(), 31) << "brute force oracle is for tiny graphs";
  return BruteForceFrom(graph, 0, 0);
}

}  // namespace kjoin
