#include "matching/hungarian.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace kjoin {

double MaxWeightMatching(const Bigraph& graph,
                         std::vector<std::pair<int32_t, int32_t>>* matched) {
  if (matched != nullptr) matched->clear();
  const int n = graph.num_left();
  const int m_real = graph.num_right();
  if (n == 0 || m_real == 0 || graph.edges().empty()) return 0.0;

  // Minimize cost = -weight over an n x (m_real + n) matrix; the n dummy
  // columns (cost 0) let every row stay effectively unmatched.
  const int m = m_real + n;
  std::vector<double> cost(static_cast<size_t>(n) * m, 0.0);
  for (const BigraphEdge& edge : graph.edges()) {
    double& cell = cost[static_cast<size_t>(edge.left) * m + edge.right];
    cell = std::min(cell, -edge.weight);  // keep the best parallel edge
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  // 1-based rows/columns; p[j] = row matched to column j (0 = none).
  std::vector<double> u(n + 1, 0.0), v(m + 1, 0.0);
  std::vector<int> p(m + 1, 0), way(m + 1, 0);
  for (int i = 1; i <= n; ++i) {
    p[0] = i;
    int j0 = 0;
    std::vector<double> minv(m + 1, kInf);
    std::vector<char> used(m + 1, 0);
    do {
      used[j0] = 1;
      const int i0 = p[j0];
      double delta = kInf;
      int j1 = -1;
      const double* row = cost.data() + static_cast<size_t>(i0 - 1) * m;
      for (int j = 1; j <= m; ++j) {
        if (used[j]) continue;
        const double cur = row[j - 1] - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      KJOIN_DCHECK(j1 != -1);
      for (int j = 0; j <= m; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      const int j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  double total = 0.0;
  for (int j = 1; j <= m_real; ++j) {
    const int i = p[j];
    if (i == 0) continue;
    const double weight = -cost[static_cast<size_t>(i - 1) * m + (j - 1)];
    if (weight > 0.0) {
      total += weight;
      if (matched != nullptr) matched->emplace_back(i - 1, j - 1);
    }
  }
  return total;
}

namespace {

// Recursively assigns left vertices [index..n) given the used-right mask.
double BruteForceFrom(const Bigraph& graph, int32_t index, uint32_t used_right) {
  if (index >= graph.num_left()) return 0.0;
  // Option 1: leave `index` unmatched.
  double best = BruteForceFrom(graph, index + 1, used_right);
  for (int32_t e : graph.left_edges(index)) {
    const BigraphEdge& edge = graph.edges()[e];
    if ((used_right >> edge.right) & 1u) continue;
    best = std::max(best, edge.weight + BruteForceFrom(graph, index + 1,
                                                       used_right | (1u << edge.right)));
  }
  return best;
}

}  // namespace

double MaxWeightMatchingBruteForce(const Bigraph& graph) {
  KJOIN_CHECK_LE(graph.num_right(), 31) << "brute force oracle is for tiny graphs";
  return BruteForceFrom(graph, 0, 0);
}

}  // namespace kjoin
