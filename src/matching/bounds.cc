#include "matching/bounds.h"

#include <algorithm>

namespace kjoin {

double PerVertexUpperBound(const Bigraph& graph, BoundScratch* scratch) {
  std::vector<double>& left_best = scratch->left_best;
  std::vector<double>& right_best = scratch->right_best;
  left_best.assign(graph.num_left(), 0.0);
  right_best.assign(graph.num_right(), 0.0);
  for (const BigraphEdge& edge : graph.edges()) {
    left_best[edge.left] = std::max(left_best[edge.left], edge.weight);
    right_best[edge.right] = std::max(right_best[edge.right], edge.weight);
  }
  double left_sum = 0.0;
  for (double best : left_best) left_sum += best;
  double right_sum = 0.0;
  for (double best : right_best) right_sum += best;
  return std::min(left_sum, right_sum);
}

double PerVertexUpperBound(const Bigraph& graph) {
  BoundScratch scratch;
  return PerVertexUpperBound(graph, &scratch);
}

}  // namespace kjoin
