#include "matching/bounds.h"

#include <algorithm>

namespace kjoin {

double PerVertexUpperBound(const Bigraph& graph) {
  double left_sum = 0.0;
  for (int32_t l = 0; l < graph.num_left(); ++l) {
    double best = 0.0;
    for (int32_t e : graph.left_edges(l)) best = std::max(best, graph.edges()[e].weight);
    left_sum += best;
  }
  double right_sum = 0.0;
  for (int32_t r = 0; r < graph.num_right(); ++r) {
    double best = 0.0;
    for (int32_t e : graph.right_edges(r)) best = std::max(best, graph.edges()[e].weight);
    right_sum += best;
  }
  return std::min(left_sum, right_sum);
}

}  // namespace kjoin
