#ifndef KJOIN_MATCHING_HUNGARIAN_H_
#define KJOIN_MATCHING_HUNGARIAN_H_

// Maximum-weight bipartite matching (the Hungarian / Kuhn-Munkres
// algorithm with Jonker-Volgenant style potentials).
//
// The paper computes the fuzzy overlap ‖Sx ∩̃δ Sy‖ as the maximum-weight
// matching of the candidate bigraph. Vertices may stay unmatched (weights
// are non-negative, so an unmatched vertex simply contributes 0); this is
// realized by padding with zero-weight dummy columns.
//
// Two solvers share that semantics:
//   MaxWeightMatching       — sparse shortest-augmenting-path solver over a
//                             CSR row representation held in a reusable
//                             HungarianScratch. Each tree-growth step
//                             relaxes only the real edges of the current
//                             row (plus its one private dummy column) and
//                             scans only the columns the alternating tree
//                             has touched, so the cost per probe is
//                             O(Σ touched) instead of O(n · m) dense
//                             column sweeps. Allocation-free after the
//                             scratch warms up.
//   MaxWeightMatchingDense  — the classic dense O(n²·(n+m)) formulation
//                             over an explicit n × (m + n) cost matrix.
//                             Kept as the equivalence oracle for tests and
//                             the sparse-vs-dense microbenchmark.
// Both return the same optimal total (ties may pick different matched
// pairs of equal weight).

#include <cstdint>
#include <utility>
#include <vector>

#include "matching/bigraph.h"

namespace kjoin {

// Reusable buffers for the sparse solver. One scratch per thread: the
// verifier keeps one in its thread-local state, and the scratch-less
// MaxWeightMatching overload falls back to a function-local thread_local
// instance. All buffers grow to the largest problem seen and are reused
// verbatim afterwards; capacity_growths() counts reallocations so tests
// and benches can assert the steady state allocates nothing.
class HungarianScratch {
 public:
  // Number of times any internal buffer had to grow. Stable across calls
  // once the scratch has seen the largest (num_left, num_right, edges)
  // shape of the workload — the inner loops never allocate.
  int64_t capacity_growths() const { return capacity_growths_; }

  // Approximate retained footprint, for capacity clamping.
  size_t RetainedBytes() const;

  // Drops every buffer (capacity included). Used by the verifier to keep
  // a pathological pair from pinning a peak-sized arena per thread.
  void Release();

 private:
  friend double MaxWeightMatching(const Bigraph& graph, HungarianScratch* scratch,
                                  std::vector<std::pair<int32_t, int32_t>>* matched);

  // Resizes `vec` to `n`, counting capacity growth.
  template <typename T>
  T* Ensure(std::vector<T>* vec, size_t n) {
    if (vec->capacity() < n) ++capacity_growths_;
    vec->resize(n);
    return vec->data();
  }

  // CSR rows: per row, deduplicated real edges (best parallel weight)
  // followed by the row's private zero-cost dummy column.
  std::vector<int32_t> row_offsets_;
  std::vector<int32_t> col_;
  std::vector<double> cost_;
  // Dedup bookkeeping: last row that touched a column and where.
  std::vector<int32_t> col_stamp_;
  std::vector<int32_t> col_pos_;
  // Potentials and augmenting-path state (1-based columns, 0 = virtual
  // root), persisting across the row loop within one call.
  std::vector<double> u_, v_, minv_;
  std::vector<int32_t> p_, way_, touched_;
  std::vector<char> used_;
  int64_t capacity_growths_ = 0;
};

// Returns the total weight of a maximum-weight matching of `graph`,
// using (and warming) `scratch`. If `matched` is non-null it receives the
// matched (left, right) pairs with strictly positive edge weight.
double MaxWeightMatching(const Bigraph& graph, HungarianScratch* scratch,
                         std::vector<std::pair<int32_t, int32_t>>* matched = nullptr);

// Convenience overload backed by a thread-local scratch (capacity-clamped
// after oversized problems).
double MaxWeightMatching(const Bigraph& graph,
                         std::vector<std::pair<int32_t, int32_t>>* matched = nullptr);

// Dense reference implementation (test oracle / microbenchmark baseline).
double MaxWeightMatchingDense(const Bigraph& graph,
                              std::vector<std::pair<int32_t, int32_t>>* matched = nullptr);

// Exponential-time exact matcher used as the correctness oracle in tests.
// Requires num_right <= 31.
double MaxWeightMatchingBruteForce(const Bigraph& graph);

}  // namespace kjoin

#endif  // KJOIN_MATCHING_HUNGARIAN_H_
