#ifndef KJOIN_MATCHING_HUNGARIAN_H_
#define KJOIN_MATCHING_HUNGARIAN_H_

// Maximum-weight bipartite matching (the Hungarian / Kuhn-Munkres
// algorithm with Jonker-Volgenant style potentials).
//
// The paper computes the fuzzy overlap ‖Sx ∩̃δ Sy‖ as the maximum-weight
// matching of the candidate bigraph. Vertices may stay unmatched (weights
// are non-negative, so an unmatched vertex simply contributes 0); this is
// realized by padding with zero-weight dummy columns. Complexity is
// O(n² · (n + m)) for n = |left| ≤ m-ish sides — objects have tens of
// elements, so this is microseconds in practice.

#include <cstdint>
#include <utility>
#include <vector>

#include "matching/bigraph.h"

namespace kjoin {

// Returns the total weight of a maximum-weight matching of `graph`. If
// `matched` is non-null it receives the matched (left, right) pairs with
// strictly positive edge weight.
double MaxWeightMatching(const Bigraph& graph,
                         std::vector<std::pair<int32_t, int32_t>>* matched = nullptr);

// Exponential-time exact matcher used as the correctness oracle in tests.
// Requires min(num_left, num_right) <= 10.
double MaxWeightMatchingBruteForce(const Bigraph& graph);

}  // namespace kjoin

#endif  // KJOIN_MATCHING_HUNGARIAN_H_
