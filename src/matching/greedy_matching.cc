#include "matching/greedy_matching.h"

#include <algorithm>

namespace kjoin {

double GreedyMaxWeightLowerBound(const Bigraph& graph, GreedyScratch* scratch) {
  std::vector<int32_t>& order = scratch->order;
  order.resize(graph.edges().size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int32_t>(i);
  std::sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
    const double wa = graph.edges()[a].weight;
    const double wb = graph.edges()[b].weight;
    if (wa != wb) return wa > wb;
    return a < b;  // deterministic tie-break
  });
  std::vector<char>& left_used = scratch->left_used;
  std::vector<char>& right_used = scratch->right_used;
  left_used.assign(graph.num_left(), 0);
  right_used.assign(graph.num_right(), 0);
  double total = 0.0;
  for (int32_t e : order) {
    const BigraphEdge& edge = graph.edges()[e];
    if (left_used[edge.left] || right_used[edge.right]) continue;
    left_used[edge.left] = 1;
    right_used[edge.right] = 1;
    total += edge.weight;
  }
  return total;
}

double GreedyMinDegreeLowerBound(const Bigraph& graph, GreedyScratch* scratch) {
  // Remaining degrees change as vertices are removed; with the tiny
  // per-object graphs K-Join sees, recomputing live degrees on demand is
  // simpler and still linear-ish.
  std::vector<char>& left_used = scratch->left_used;
  std::vector<char>& right_used = scratch->right_used;
  left_used.assign(graph.num_left(), 0);
  right_used.assign(graph.num_right(), 0);
  double total = 0.0;
  for (int step = 0; step < graph.num_left(); ++step) {
    // Left vertex with the smallest positive live degree.
    int32_t best_left = -1;
    int32_t best_degree = 0;
    for (int32_t l = 0; l < graph.num_left(); ++l) {
      if (left_used[l]) continue;
      int32_t degree = 0;
      for (int32_t e : graph.left_edges(l)) {
        if (!right_used[graph.edges()[e].right]) ++degree;
      }
      if (degree > 0 && (best_left == -1 || degree < best_degree)) {
        best_left = l;
        best_degree = degree;
      }
    }
    if (best_left == -1) break;  // no edges remain
    // Its smallest-live-degree right neighbour (ties: heavier edge).
    int32_t best_edge = -1;
    int32_t best_right_degree = 0;
    for (int32_t e : graph.left_edges(best_left)) {
      const int32_t r = graph.edges()[e].right;
      if (right_used[r]) continue;
      int32_t degree = 0;
      for (int32_t e2 : graph.right_edges(r)) {
        if (!left_used[graph.edges()[e2].left]) ++degree;
      }
      if (best_edge == -1 || degree < best_right_degree ||
          (degree == best_right_degree &&
           graph.edges()[e].weight > graph.edges()[best_edge].weight)) {
        best_edge = e;
        best_right_degree = degree;
      }
    }
    const BigraphEdge& edge = graph.edges()[best_edge];
    left_used[edge.left] = 1;
    right_used[edge.right] = 1;
    total += edge.weight;
  }
  return total;
}

double CombinedLowerBound(const Bigraph& graph, GreedyScratch* scratch) {
  return std::max(GreedyMaxWeightLowerBound(graph, scratch),
                  GreedyMinDegreeLowerBound(graph, scratch));
}

double GreedyMaxWeightLowerBound(const Bigraph& graph) {
  GreedyScratch scratch;
  return GreedyMaxWeightLowerBound(graph, &scratch);
}

double GreedyMinDegreeLowerBound(const Bigraph& graph) {
  GreedyScratch scratch;
  return GreedyMinDegreeLowerBound(graph, &scratch);
}

double CombinedLowerBound(const Bigraph& graph) {
  GreedyScratch scratch;
  return CombinedLowerBound(graph, &scratch);
}

}  // namespace kjoin
