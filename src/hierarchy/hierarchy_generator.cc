#include "hierarchy/hierarchy_generator.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/logging.h"

namespace kjoin {
namespace {

// Level sizes L[0..height] with L[0] = 1, geometric-ish growth, summing to
// exactly num_nodes, every level non-empty.
std::vector<int64_t> PlanLevelSizes(int64_t num_nodes, int height) {
  KJOIN_CHECK_GE(height, 1);
  KJOIN_CHECK_GE(num_nodes, height + 1) << "too few nodes for the requested height";

  auto total_for_growth = [&](double g) {
    double level = 1.0;
    double total = 1.0;
    for (int i = 1; i <= height; ++i) {
      level = std::max(1.0, level * g);
      total += level;
    }
    return total;
  };

  double lo = 1.0, hi = 64.0;
  for (int iter = 0; iter < 100; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (total_for_growth(mid) < static_cast<double>(num_nodes)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }

  std::vector<int64_t> sizes(height + 1, 1);
  double level = 1.0;
  int64_t total = 1;
  for (int i = 1; i <= height; ++i) {
    level = std::max(1.0, level * hi);
    sizes[i] = std::max<int64_t>(1, static_cast<int64_t>(std::llround(level)));
    total += sizes[i];
  }
  // Absorb the rounding error in the deepest level (kept >= 1).
  sizes[height] = std::max<int64_t>(1, sizes[height] + (num_nodes - total));
  total = 0;
  for (int64_t s : sizes) total += s;
  // If the deepest level hit its floor we may still be over; trim the
  // widest level.
  while (total > num_nodes) {
    auto widest = std::max_element(sizes.begin() + 1, sizes.end());
    KJOIN_CHECK_GT(*widest, 1);
    --*widest;
    --total;
  }
  while (total < num_nodes) {
    ++sizes[height];
    ++total;
  }
  return sizes;
}

// A pronounceable pseudo-word: 2-4 consonant+vowel syllables.
std::string RandomWord(Rng& rng) {
  static constexpr const char* kOnsets[] = {"b",  "c",  "d",  "f",  "g",  "h",  "k", "l",
                                            "m",  "n",  "p",  "r",  "s",  "t",  "v", "z",
                                            "br", "ch", "cr", "dr", "gr", "pl", "sh", "st",
                                            "th", "tr"};
  static constexpr const char* kVowels[] = {"a", "e", "i", "o", "u", "ai", "ea", "ou"};
  const int syllables = static_cast<int>(rng.NextInt(2, 4));
  std::string word;
  for (int i = 0; i < syllables; ++i) {
    word += kOnsets[rng.NextUint64(std::size(kOnsets))];
    word += kVowels[rng.NextUint64(std::size(kVowels))];
  }
  return word;
}

}  // namespace

Hierarchy GenerateHierarchy(const HierarchyGenParams& params) {
  KJOIN_CHECK_GE(params.avg_fanout, 1.0);
  KJOIN_CHECK_GE(params.max_fanout, 2);
  Rng rng(params.seed);
  const std::vector<int64_t> level_sizes = PlanLevelSizes(params.num_nodes, params.height);

  std::vector<NodeId> parents;
  std::vector<std::string> labels;
  parents.reserve(params.num_nodes);
  labels.reserve(params.num_nodes);

  std::unordered_set<std::string> used_labels;
  auto fresh_label = [&]() {
    for (int attempt = 0; attempt < 16; ++attempt) {
      std::string word = RandomWord(rng);
      if (used_labels.insert(word).second) return word;
    }
    // Rare: disambiguate with a numeric suffix.
    for (int64_t i = 0;; ++i) {
      std::string word = RandomWord(rng) + std::to_string(i);
      if (used_labels.insert(word).second) return word;
    }
  };

  parents.push_back(kInvalidNode);
  labels.push_back("Root");
  used_labels.insert("Root");

  std::vector<NodeId> current_level = {0};
  for (int level = 0; level < params.height; ++level) {
    const int64_t child_count = level_sizes[level + 1];

    // How many of this level's nodes become internal. Their fanouts
    // average ~avg_fanout; the rest of the level stays leaves so the tree
    // has leaves at every depth.
    int64_t num_internal = std::clamp<int64_t>(
        static_cast<int64_t>(std::llround(child_count / params.avg_fanout)), 1,
        static_cast<int64_t>(current_level.size()));
    // A single internal parent cannot exceed max_fanout.
    while (num_internal * params.max_fanout < child_count &&
           num_internal < static_cast<int64_t>(current_level.size())) {
      ++num_internal;
    }
    KJOIN_CHECK_LE(child_count, num_internal * params.max_fanout)
        << "level " << level << " cannot host " << child_count << " children";

    std::vector<NodeId> shuffled = current_level;
    rng.Shuffle(&shuffled);
    std::vector<NodeId> internal(shuffled.begin(), shuffled.begin() + num_internal);

    // Zipf-skewed fanout split: everyone gets one child, the remainder is
    // distributed with weights 1/rank so a few hubs grow large.
    std::vector<int64_t> fanouts(num_internal, 1);
    std::vector<double> weights(num_internal);
    for (int64_t j = 0; j < num_internal; ++j) weights[j] = 1.0 / static_cast<double>(j + 1);
    int64_t remaining = child_count - num_internal;
    KJOIN_CHECK_GE(remaining, 0);
    while (remaining > 0) {
      const size_t j = rng.NextWeighted(weights);
      if (fanouts[j] >= params.max_fanout) {
        weights[j] = 0.0;  // saturated hub
        continue;
      }
      ++fanouts[j];
      --remaining;
    }

    std::vector<NodeId> next_level;
    next_level.reserve(child_count);
    for (int64_t j = 0; j < num_internal; ++j) {
      for (int64_t c = 0; c < fanouts[j]; ++c) {
        parents.push_back(internal[j]);
        labels.push_back(fresh_label());
        next_level.push_back(static_cast<NodeId>(parents.size() - 1));
      }
    }
    current_level = std::move(next_level);
  }

  KJOIN_CHECK_EQ(static_cast<int64_t>(parents.size()), params.num_nodes);
  return Hierarchy(std::move(parents), std::move(labels));
}

}  // namespace kjoin
