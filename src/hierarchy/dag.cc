#include "hierarchy/dag.h"

#include <algorithm>

#include "common/fault_injection.h"
#include "common/logging.h"

namespace kjoin {

Dag::Dag(std::string root_label) {
  labels_.push_back(std::move(root_label));
  parents_.emplace_back();
  children_.emplace_back();
}

int32_t Dag::AddNode(std::string label) {
  labels_.push_back(std::move(label));
  parents_.emplace_back();
  children_.emplace_back();
  return static_cast<int32_t>(labels_.size() - 1);
}

void Dag::AddEdge(int32_t parent, int32_t child) {
  const Status status = TryAddEdge(parent, child);
  KJOIN_CHECK(status.ok()) << status;
}

Status Dag::TryAddEdge(int32_t parent, int32_t child) {
  if (parent < 0 || parent >= num_nodes()) {
    return InvalidArgumentError("edge parent " + std::to_string(parent) +
                                " out of range (have " + std::to_string(num_nodes()) +
                                " nodes)");
  }
  if (child < 0 || child >= num_nodes()) {
    return InvalidArgumentError("edge child " + std::to_string(child) +
                                " out of range (have " + std::to_string(num_nodes()) +
                                " nodes)");
  }
  if (parent == child) {
    return InvalidArgumentError("self-loop on node " + std::to_string(parent) + " '" +
                                labels_[parent] + "'");
  }
  auto& kids = children_[parent];
  if (std::find(kids.begin(), kids.end(), child) != kids.end()) return OkStatus();
  kids.push_back(child);
  parents_[child].push_back(parent);
  return OkStatus();
}

namespace {

// Returns the first node found on a cycle reachable from the root, or
// kInvalidNode when the reachable sub-DAG is acyclic (iterative
// three-color DFS).
int32_t FindCycleNode(const Dag& dag) {
  enum : uint8_t { kWhite, kGray, kBlack };
  std::vector<uint8_t> color(dag.num_nodes(), kWhite);
  std::vector<std::pair<int32_t, size_t>> stack;
  stack.emplace_back(0, 0);
  color[0] = kGray;
  while (!stack.empty()) {
    auto& [node, next] = stack.back();
    const auto& kids = dag.children(node);
    if (next < kids.size()) {
      const int32_t child = kids[next++];
      if (color[child] == kGray) return child;
      if (color[child] == kWhite) {
        color[child] = kGray;
        stack.emplace_back(child, 0);
      }
    } else {
      color[node] = kBlack;
      stack.pop_back();
    }
  }
  return kInvalidNode;
}

}  // namespace

StatusOr<Hierarchy> ConvertDagToTree(const Dag& dag, int64_t max_tree_nodes) {
  if (const int32_t on_cycle = FindCycleNode(dag); on_cycle != kInvalidNode) {
    return InvalidArgumentError("dag has a cycle through node " +
                                std::to_string(on_cycle) + " '" + dag.label(on_cycle) +
                                "'");
  }
  if (KJOIN_FAULT_POINT("dag/cycle_check")) {
    return InvalidArgumentError("injected cycle detection failure");
  }

  // Depth-first unfolding: each (tree-parent, dag-node) visit creates a
  // fresh tree node, so a DAG node with v parents yields v copies of its
  // whole subtree, as §6.5 prescribes.
  std::vector<NodeId> tree_parents;
  std::vector<std::string> tree_labels;
  std::vector<bool> reachable(dag.num_nodes(), false);

  struct Frame {
    int32_t dag_node;
    NodeId tree_parent;
  };
  std::vector<Frame> stack;
  stack.push_back({0, kInvalidNode});
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    if (static_cast<int64_t>(tree_parents.size()) >= max_tree_nodes) {
      return ResourceExhaustedError(
          "dag unfolding exceeds max_tree_nodes=" + std::to_string(max_tree_nodes) +
          " (multi-parent diamonds duplicate subtrees; raise the bound or prune the "
          "dag)");
    }
    const NodeId tree_node = static_cast<NodeId>(tree_parents.size());
    tree_parents.push_back(frame.tree_parent);
    tree_labels.push_back(dag.label(frame.dag_node));
    reachable[frame.dag_node] = true;
    const auto& kids = dag.children(frame.dag_node);
    // Push in reverse so children unfold in declaration order.
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.push_back({*it, tree_node});
    }
  }

  // But the DFS above only descends, so a child is only expanded when its
  // parent frame is; reachability from the root is exactly what got
  // visited. Reject DAGs with unreachable nodes: they would silently
  // disappear from the tree.
  for (int32_t v = 0; v < dag.num_nodes(); ++v) {
    if (!reachable[v]) {
      return InvalidArgumentError("node " + std::to_string(v) + " '" + dag.label(v) +
                                  "' is unreachable from the root");
    }
  }
  return Hierarchy(std::move(tree_parents), std::move(tree_labels));
}

}  // namespace kjoin
