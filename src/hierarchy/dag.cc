#include "hierarchy/dag.h"

#include <algorithm>

#include "common/logging.h"

namespace kjoin {

Dag::Dag(std::string root_label) {
  labels_.push_back(std::move(root_label));
  parents_.emplace_back();
  children_.emplace_back();
}

int32_t Dag::AddNode(std::string label) {
  labels_.push_back(std::move(label));
  parents_.emplace_back();
  children_.emplace_back();
  return static_cast<int32_t>(labels_.size() - 1);
}

void Dag::AddEdge(int32_t parent, int32_t child) {
  KJOIN_CHECK(parent >= 0 && parent < num_nodes());
  KJOIN_CHECK(child >= 0 && child < num_nodes());
  KJOIN_CHECK_NE(parent, child);
  auto& kids = children_[parent];
  if (std::find(kids.begin(), kids.end(), child) != kids.end()) return;
  kids.push_back(child);
  parents_[child].push_back(parent);
}

namespace {

// Returns true if the DAG (restricted to nodes reachable from the root)
// is acyclic, via iterative three-color DFS.
bool IsAcyclicFromRoot(const Dag& dag) {
  enum : uint8_t { kWhite, kGray, kBlack };
  std::vector<uint8_t> color(dag.num_nodes(), kWhite);
  std::vector<std::pair<int32_t, size_t>> stack;
  stack.emplace_back(0, 0);
  color[0] = kGray;
  while (!stack.empty()) {
    auto& [node, next] = stack.back();
    const auto& kids = dag.children(node);
    if (next < kids.size()) {
      const int32_t child = kids[next++];
      if (color[child] == kGray) return false;
      if (color[child] == kWhite) {
        color[child] = kGray;
        stack.emplace_back(child, 0);
      }
    } else {
      color[node] = kBlack;
      stack.pop_back();
    }
  }
  return true;
}

}  // namespace

std::optional<Hierarchy> ConvertDagToTree(const Dag& dag, int64_t max_tree_nodes) {
  if (!IsAcyclicFromRoot(dag)) return std::nullopt;

  // Depth-first unfolding: each (tree-parent, dag-node) visit creates a
  // fresh tree node, so a DAG node with v parents yields v copies of its
  // whole subtree, as §6.5 prescribes.
  std::vector<NodeId> tree_parents;
  std::vector<std::string> tree_labels;
  std::vector<bool> reachable(dag.num_nodes(), false);

  struct Frame {
    int32_t dag_node;
    NodeId tree_parent;
  };
  std::vector<Frame> stack;
  stack.push_back({0, kInvalidNode});
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    if (static_cast<int64_t>(tree_parents.size()) >= max_tree_nodes) return std::nullopt;
    const NodeId tree_node = static_cast<NodeId>(tree_parents.size());
    tree_parents.push_back(frame.tree_parent);
    tree_labels.push_back(dag.label(frame.dag_node));
    reachable[frame.dag_node] = true;
    const auto& kids = dag.children(frame.dag_node);
    // Push in reverse so children unfold in declaration order.
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.push_back({*it, tree_node});
    }
  }

  // But the DFS above only descends, so a child is only expanded when its
  // parent frame is; reachability from the root is exactly what got
  // visited. Reject DAGs with unreachable nodes: they would silently
  // disappear from the tree.
  for (int32_t v = 0; v < dag.num_nodes(); ++v) {
    if (!reachable[v]) return std::nullopt;
  }
  return Hierarchy(std::move(tree_parents), std::move(tree_labels));
}

}  // namespace kjoin
