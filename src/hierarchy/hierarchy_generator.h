#ifndef KJOIN_HIERARCHY_HIERARCHY_GENERATOR_H_
#define KJOIN_HIERARCHY_HIERARCHY_GENERATOR_H_

// Synthetic knowledge hierarchies.
//
// The paper evaluates on a hierarchy crawled from Factual whose shape is
// published in its Table 2 (4222 nodes, height 6, average fanout 7, max
// fanout 49, min fanout 1) but whose content is not public. K-Join's
// algorithms only consume structure — depths, LCAs, fanouts — so this
// generator produces a tree with the same shape statistics plus unique,
// pronounceable labels that the typo/synonym channels of the dataset
// generators can perturb. See DESIGN.md §3 for the substitution rationale.

#include <cstdint>

#include "common/rng.h"
#include "hierarchy/hierarchy.h"

namespace kjoin {

struct HierarchyGenParams {
  // Defaults reproduce the paper's Table 2 shape.
  int64_t num_nodes = 4222;
  int height = 6;
  double avg_fanout = 7.0;
  int max_fanout = 49;
  uint64_t seed = 42;
};

// Generates a random hierarchy matching the requested shape:
//  * exactly `num_nodes` nodes and height exactly `height`;
//  * internal-node fanout averaging ~`avg_fanout`, skewed (Zipf-like) so
//    a few hubs approach `max_fanout` while others have a single child;
//  * leaves occur at every level >= 2 so elements have varied depths, as
//    in the POI/Tweet datasets (avg element depth 4-5).
Hierarchy GenerateHierarchy(const HierarchyGenParams& params);

}  // namespace kjoin

#endif  // KJOIN_HIERARCHY_HIERARCHY_GENERATOR_H_
