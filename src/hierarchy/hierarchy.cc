#include "hierarchy/hierarchy.h"

#include <algorithm>

#include "common/logging.h"

namespace kjoin {

Hierarchy::Hierarchy(std::vector<NodeId> parents, std::vector<std::string> labels)
    : parents_(std::move(parents)), labels_(std::move(labels)) {
  KJOIN_CHECK(!parents_.empty()) << "a hierarchy needs at least a root";
  KJOIN_CHECK_EQ(parents_.size(), labels_.size());
  KJOIN_CHECK_EQ(parents_[0], kInvalidNode) << "node 0 must be the root";

  const int64_t n = num_nodes();
  depths_.assign(n, 0);
  child_offsets_.assign(n + 1, 0);
  for (NodeId v = 1; v < n; ++v) {
    const NodeId p = parents_[v];
    KJOIN_CHECK(p >= 0 && p < v) << "parents must precede children (node " << v << ")";
    depths_[v] = depths_[p] + 1;
    ++child_offsets_[p + 1];
    height_ = std::max(height_, depths_[v]);
  }
  // CSR fill: prefix-sum the per-parent counts, then place children in
  // ascending id order (the same order the old per-node vectors grew in).
  for (NodeId v = 0; v < n; ++v) child_offsets_[v + 1] += child_offsets_[v];
  child_nodes_.resize(n > 0 ? n - 1 : 0);
  std::vector<int32_t> cursor(child_offsets_.begin(), child_offsets_.end() - 1);
  for (NodeId v = 1; v < n; ++v) child_nodes_[cursor[parents_[v]]++] = v;
  for (NodeId v = 0; v < n; ++v) {
    if (IsLeaf(v)) leaves_.push_back(v);
    label_index_[labels_[v]].push_back(v);
  }
}

Hierarchy::Hierarchy(HierarchyParts parts, AdoptTag)
    : parents_(std::move(parts.parents)),
      labels_(std::move(parts.labels)),
      depths_(std::move(parts.depths)),
      child_offsets_(std::move(parts.child_offsets)),
      child_nodes_(std::move(parts.child_nodes)),
      leaves_(std::move(parts.leaves)),
      height_(parts.height) {
  for (NodeId v = 0; v < num_nodes(); ++v) label_index_[labels_[v]].push_back(v);
}

StatusOr<Hierarchy> Hierarchy::FromParts(HierarchyParts parts) {
  const auto reject = [](const std::string& what) {
    return InvalidArgumentError("hierarchy parts: " + what);
  };
  const int64_t n = static_cast<int64_t>(parts.parents.size());
  if (n == 0) return reject("no nodes");
  if (parts.labels.size() != parts.parents.size()) return reject("label count mismatch");
  if (parts.depths.size() != parts.parents.size()) return reject("depth count mismatch");
  if (parts.parents[0] != kInvalidNode) return reject("node 0 is not the root");
  if (parts.depths[0] != 0) return reject("root depth is not 0");
  if (parts.child_offsets.size() != static_cast<size_t>(n) + 1 ||
      parts.child_nodes.size() != static_cast<size_t>(n) - 1) {
    return reject("CSR adjacency sizes inconsistent");
  }
  if (parts.child_offsets[0] != 0 || parts.child_offsets[n] != n - 1) {
    return reject("CSR offsets do not cover all children");
  }
  int height = 0;
  for (NodeId v = 1; v < n; ++v) {
    const NodeId p = parts.parents[v];
    if (p < 0 || p >= v) return reject("parent of node " + std::to_string(v) + " out of order");
    if (parts.depths[v] != parts.depths[p] + 1) {
      return reject("depth of node " + std::to_string(v) + " inconsistent with its parent");
    }
    height = std::max(height, parts.depths[v]);
  }
  if (parts.height != height) return reject("height inconsistent with depths");
  // Monotone offsets plus the pinned endpoints above prove every offset
  // lies in [0, n-1], so the replay below never indexes child_nodes out
  // of bounds whatever the (untrusted) interior values are.
  for (NodeId v = 0; v < n; ++v) {
    if (parts.child_offsets[v + 1] < parts.child_offsets[v]) {
      return reject("CSR offsets not monotone");
    }
  }
  // The CSR must be exactly the adjacency of `parents` with each child
  // list ascending: replay the fill the constructor would do and compare.
  std::vector<int32_t> cursor(parts.child_offsets.begin(), parts.child_offsets.end() - 1);
  for (NodeId v = 1; v < n; ++v) {
    const NodeId p = parts.parents[v];
    const int32_t slot = cursor[p]++;
    if (slot >= parts.child_offsets[p + 1] || parts.child_nodes[slot] != v) {
      return reject("CSR adjacency inconsistent with parents at node " + std::to_string(v));
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    if (cursor[v] != parts.child_offsets[v + 1]) {
      return reject("child list of node " + std::to_string(v) + " over- or under-full");
    }
  }
  size_t leaf_cursor = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (parts.child_offsets[v] != parts.child_offsets[v + 1]) continue;
    if (leaf_cursor >= parts.leaves.size() || parts.leaves[leaf_cursor] != v) {
      return reject("leaf list inconsistent");
    }
    ++leaf_cursor;
  }
  if (leaf_cursor != parts.leaves.size()) return reject("leaf list has extra entries");
  return Hierarchy(std::move(parts), AdoptTag{});
}

const std::vector<NodeId>& Hierarchy::NodesWithLabel(std::string_view label) const {
  static const std::vector<NodeId>* const kEmpty = new std::vector<NodeId>();
  auto it = label_index_.find(std::string(label));
  return it == label_index_.end() ? *kEmpty : it->second;
}

std::optional<NodeId> Hierarchy::FindByLabel(std::string_view label) const {
  const std::vector<NodeId>& nodes = NodesWithLabel(label);
  if (nodes.size() != 1) return std::nullopt;
  return nodes[0];
}

NodeId Hierarchy::AncestorAtDepth(NodeId node, int target_depth) const {
  KJOIN_CHECK_GE(target_depth, 0);
  KJOIN_CHECK_LE(target_depth, depth(node));
  while (depths_[node] > target_depth) node = parents_[node];
  return node;
}

bool Hierarchy::IsAncestor(NodeId ancestor, NodeId node) const {
  if (depth(ancestor) > depth(node)) return false;
  return AncestorAtDepth(node, depth(ancestor)) == ancestor;
}

NodeId Hierarchy::LowestCommonAncestorNaive(NodeId x, NodeId y) const {
  CheckId(x);
  CheckId(y);
  while (depths_[x] > depths_[y]) x = parents_[x];
  while (depths_[y] > depths_[x]) y = parents_[y];
  while (x != y) {
    x = parents_[x];
    y = parents_[y];
  }
  return x;
}

HierarchyStats Hierarchy::ComputeStats() const {
  HierarchyStats stats;
  stats.num_nodes = num_nodes();
  stats.height = height_;
  stats.num_leaves = static_cast<int64_t>(leaves_.size());

  int64_t fanout_sum = 0;
  int64_t internal = 0;
  stats.min_fanout = 0;
  for (NodeId v = 0; v < num_nodes(); ++v) {
    const int fanout = child_offsets_[v + 1] - child_offsets_[v];
    if (fanout == 0) continue;
    ++internal;
    fanout_sum += fanout;
    stats.max_fanout = std::max(stats.max_fanout, fanout);
    stats.min_fanout = (internal == 1) ? fanout : std::min(stats.min_fanout, fanout);
  }
  stats.avg_fanout = internal > 0 ? static_cast<double>(fanout_sum) / internal : 0.0;

  int64_t leaf_depth_sum = 0;
  for (NodeId leaf : leaves_) leaf_depth_sum += depths_[leaf];
  stats.avg_leaf_depth =
      leaves_.empty() ? 0.0 : static_cast<double>(leaf_depth_sum) / leaves_.size();
  return stats;
}

NodeId Hierarchy::CheckId(NodeId node) const {
  KJOIN_DCHECK(node >= 0 && node < num_nodes()) << "bad node id " << node;
  return node;
}

}  // namespace kjoin
