#ifndef KJOIN_HIERARCHY_HIERARCHY_IO_H_
#define KJOIN_HIERARCHY_HIERARCHY_IO_H_

// Plain-text serialization of hierarchies.
//
// Format: one node per line, "<id>\t<parent-id>\t<label>", ids dense and
// parent-before-child, the root with parent -1. Lines starting with '#'
// and blank lines are ignored. This is the interchange format for loading
// a real taxonomy (e.g. a Yago category export) into the library.
//
// The parsers treat their input as untrusted: malformed text is reported
// as a Status (kInvalidArgument with "<source>:<line>: ..." context,
// kNotFound for missing files, kDataLoss for failed reads) rather than
// terminating the process. See docs/robustness.md.

#include <string>
#include <string_view>

#include "common/status.h"
#include "hierarchy/hierarchy.h"

namespace kjoin {

// Renders the hierarchy in the text format above.
std::string SerializeHierarchy(const Hierarchy& hierarchy);

// Parses the text format. `source_name` labels error messages (pass the
// file path when parsing file contents). Fails with kInvalidArgument on
// non-dense or duplicate ids, forward parent references, missing fields,
// non-UTF-8 labels, or an empty hierarchy.
StatusOr<Hierarchy> ParseHierarchy(std::string_view text,
                                   std::string_view source_name = "<string>");

// File convenience wrappers.
Status WriteHierarchyFile(const Hierarchy& hierarchy, const std::string& path);
StatusOr<Hierarchy> ReadHierarchyFile(const std::string& path);

}  // namespace kjoin

#endif  // KJOIN_HIERARCHY_HIERARCHY_IO_H_
