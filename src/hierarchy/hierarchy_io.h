#ifndef KJOIN_HIERARCHY_HIERARCHY_IO_H_
#define KJOIN_HIERARCHY_HIERARCHY_IO_H_

// Plain-text serialization of hierarchies.
//
// Format: one node per line, "<id>\t<parent-id>\t<label>", ids dense and
// parent-before-child, the root with parent -1. Lines starting with '#'
// and blank lines are ignored. This is the interchange format for loading
// a real taxonomy (e.g. a Yago category export) into the library.

#include <optional>
#include <string>
#include <string_view>

#include "hierarchy/hierarchy.h"

namespace kjoin {

// Renders the hierarchy in the text format above.
std::string SerializeHierarchy(const Hierarchy& hierarchy);

// Parses the text format. Returns nullopt (and logs the offending line)
// on malformed input: non-dense ids, forward parent references, missing
// fields.
std::optional<Hierarchy> ParseHierarchy(std::string_view text);

// File convenience wrappers.
bool WriteHierarchyFile(const Hierarchy& hierarchy, const std::string& path);
std::optional<Hierarchy> ReadHierarchyFile(const std::string& path);

}  // namespace kjoin

#endif  // KJOIN_HIERARCHY_HIERARCHY_IO_H_
