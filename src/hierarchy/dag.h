#ifndef KJOIN_HIERARCHY_DAG_H_
#define KJOIN_HIERARCHY_DAG_H_

// DAG-shaped knowledge bases and the paper's DAG -> tree reduction (§6.5).
//
// Real knowledge bases (Yago, Freebase) let a concept have several parents
// ("Pizza" under both "ItalianFood" and "Fastfood"). K-Join's machinery is
// defined on trees, so §6.5 duplicates every multi-parent node once per
// parent, turning the DAG into a tree in which one concept label maps to
// multiple tree nodes — exactly the multi-mapping case §6.4 (K-Join+)
// already handles.

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "hierarchy/hierarchy.h"

namespace kjoin {

// A rooted DAG under construction. Node 0 is the root.
class Dag {
 public:
  explicit Dag(std::string root_label = "Root");

  // Adds a node with no parents yet (link it with AddEdge) and returns its
  // id.
  int32_t AddNode(std::string label);

  // Declares `parent` -> `child`. Duplicate edges are ignored. Edges that
  // would make the graph cyclic are detected by ConvertDagToTree.
  void AddEdge(int32_t parent, int32_t child);

  // Like AddEdge but reports out-of-range endpoints and self-loops as
  // kInvalidArgument instead of aborting — the entry point for edges taken
  // from untrusted input.
  Status TryAddEdge(int32_t parent, int32_t child);

  int64_t num_nodes() const { return static_cast<int64_t>(labels_.size()); }
  const std::string& label(int32_t node) const { return labels_[node]; }
  const std::vector<int32_t>& parents(int32_t node) const { return parents_[node]; }
  const std::vector<int32_t>& children(int32_t node) const { return children_[node]; }

 private:
  std::vector<std::string> labels_;
  std::vector<std::vector<int32_t>> parents_;
  std::vector<std::vector<int32_t>> children_;
};

// Unfolds the DAG into a tree by duplicating the subtree below every
// multi-parent node under each of its parents (§6.5). Labels are preserved,
// so Hierarchy::NodesWithLabel returns every copy of a duplicated concept.
//
// Fails with kInvalidArgument when the DAG has a cycle or some node is
// unreachable from the root (both reported with the offending node), and
// with kResourceExhausted when unfolding would exceed `max_tree_nodes`
// (diamond stacks blow up exponentially; callers must bound the result).
StatusOr<Hierarchy> ConvertDagToTree(const Dag& dag, int64_t max_tree_nodes = 1 << 22);

}  // namespace kjoin

#endif  // KJOIN_HIERARCHY_DAG_H_
