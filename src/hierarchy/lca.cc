#include "hierarchy/lca.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace kjoin {

LcaIndex::LcaIndex(const Hierarchy& hierarchy) : hierarchy_(&hierarchy) {
  const int64_t n = hierarchy.num_nodes();
  first_visit_.assign(n, -1);
  tour_node_.reserve(2 * n);
  tour_depth_.reserve(2 * n);

  // Iterative Euler tour. The stack holds (node, next-child-index).
  std::vector<std::pair<NodeId, size_t>> stack;
  stack.emplace_back(hierarchy.root(), 0);
  first_visit_[hierarchy.root()] = 0;
  tour_node_.push_back(hierarchy.root());
  tour_depth_.push_back(0);
  while (!stack.empty()) {
    auto& [node, child_index] = stack.back();
    const std::vector<NodeId>& kids = hierarchy.children(node);
    if (child_index < kids.size()) {
      const NodeId child = kids[child_index++];
      first_visit_[child] = static_cast<int32_t>(tour_node_.size());
      tour_node_.push_back(child);
      tour_depth_.push_back(hierarchy.depth(child));
      stack.emplace_back(child, 0);
    } else {
      stack.pop_back();
      if (!stack.empty()) {
        tour_node_.push_back(stack.back().first);
        tour_depth_.push_back(hierarchy.depth(stack.back().first));
      }
    }
  }

  const size_t m = tour_node_.size();
  log2_floor_.assign(m + 1, 0);
  for (size_t len = 2; len <= m; ++len) {
    log2_floor_[len] = static_cast<int8_t>(log2_floor_[len / 2] + 1);
  }

  const int levels = log2_floor_[m] + 1;
  sparse_.assign(levels, std::vector<int32_t>(m));
  for (size_t i = 0; i < m; ++i) sparse_[0][i] = static_cast<int32_t>(i);
  for (int k = 1; k < levels; ++k) {
    const size_t half = size_t{1} << (k - 1);
    for (size_t i = 0; i + (size_t{1} << k) <= m; ++i) {
      const int32_t left = sparse_[k - 1][i];
      const int32_t right = sparse_[k - 1][i + half];
      sparse_[k][i] = tour_depth_[left] <= tour_depth_[right] ? left : right;
    }
  }
}

NodeId LcaIndex::Lca(NodeId x, NodeId y) const {
  int32_t i = first_visit_[x];
  int32_t j = first_visit_[y];
  KJOIN_DCHECK(i >= 0 && j >= 0);
  if (i > j) std::swap(i, j);
  const int32_t len = j - i + 1;
  const int k = log2_floor_[len];
  const int32_t left = sparse_[k][i];
  const int32_t right = sparse_[k][j - (int32_t{1} << k) + 1];
  const int32_t best = tour_depth_[left] <= tour_depth_[right] ? left : right;
  return tour_node_[best];
}

}  // namespace kjoin
