#include "hierarchy/lca.h"

#include <utility>

namespace kjoin {

LcaIndex::LcaIndex(const Hierarchy& hierarchy) : hierarchy_(&hierarchy) {
  const int64_t n = hierarchy.num_nodes();
  first_visit_.assign(n, -1);
  // Build-time Euler tour; only the packed sparse table survives it.
  std::vector<NodeId> tour_node;
  std::vector<int32_t> tour_depth;
  tour_node.reserve(2 * n);
  tour_depth.reserve(2 * n);

  // Iterative Euler tour. The stack holds (node, next-child-index).
  std::vector<std::pair<NodeId, size_t>> stack;
  stack.emplace_back(hierarchy.root(), 0);
  first_visit_[hierarchy.root()] = 0;
  tour_node.push_back(hierarchy.root());
  tour_depth.push_back(0);
  while (!stack.empty()) {
    auto& [node, child_index] = stack.back();
    const std::span<const NodeId> kids = hierarchy.children(node);
    if (child_index < kids.size()) {
      const NodeId child = kids[child_index++];
      first_visit_[child] = static_cast<int32_t>(tour_node.size());
      tour_node.push_back(child);
      tour_depth.push_back(hierarchy.depth(child));
      stack.emplace_back(child, 0);
    } else {
      stack.pop_back();
      if (!stack.empty()) {
        tour_node.push_back(stack.back().first);
        tour_depth.push_back(hierarchy.depth(stack.back().first));
      }
    }
  }

  const size_t m = tour_node.size();
  log2_floor_.assign(m + 1, 0);
  for (size_t len = 2; len <= m; ++len) {
    log2_floor_[len] = static_cast<int8_t>(log2_floor_[len / 2] + 1);
  }

  // Rows shrink with the level (row k has m - 2^k + 1 windows); laying
  // them out back to back keeps the table compact and the two loads of a
  // query in adjacent rows.
  const int levels = log2_floor_[m] + 1;
  row_offset_.assign(levels + 1, 0);
  for (int k = 0; k < levels; ++k) {
    row_offset_[k + 1] = row_offset_[k] + (m - (size_t{1} << k) + 1);
  }
  sparse_.resize(row_offset_[levels]);
  for (size_t i = 0; i < m; ++i) {
    sparse_[i] = (static_cast<int64_t>(tour_depth[i]) << 32) |
                 static_cast<uint32_t>(tour_node[i]);
  }
  for (int k = 1; k < levels; ++k) {
    const int64_t* prev = sparse_.data() + row_offset_[k - 1];
    int64_t* row = sparse_.data() + row_offset_[k];
    const size_t half = size_t{1} << (k - 1);
    const size_t windows = m - (size_t{1} << k) + 1;
    for (size_t i = 0; i < windows; ++i) {
      row[i] = std::min(prev[i], prev[i + half]);
    }
  }
}

}  // namespace kjoin
