#include "hierarchy/lca.h"

#include <utility>

namespace kjoin {

LcaIndex::LcaIndex(const Hierarchy& hierarchy) : hierarchy_(&hierarchy) {
  const int64_t n = hierarchy.num_nodes();
  first_visit_.assign(n, -1);
  // Build-time Euler tour; only the packed sparse table survives it.
  std::vector<NodeId> tour_node;
  std::vector<int32_t> tour_depth;
  tour_node.reserve(2 * n);
  tour_depth.reserve(2 * n);

  // Iterative Euler tour. The stack holds (node, next-child-index).
  std::vector<std::pair<NodeId, size_t>> stack;
  stack.emplace_back(hierarchy.root(), 0);
  first_visit_[hierarchy.root()] = 0;
  tour_node.push_back(hierarchy.root());
  tour_depth.push_back(0);
  while (!stack.empty()) {
    auto& [node, child_index] = stack.back();
    const std::span<const NodeId> kids = hierarchy.children(node);
    if (child_index < kids.size()) {
      const NodeId child = kids[child_index++];
      first_visit_[child] = static_cast<int32_t>(tour_node.size());
      tour_node.push_back(child);
      tour_depth.push_back(hierarchy.depth(child));
      stack.emplace_back(child, 0);
    } else {
      stack.pop_back();
      if (!stack.empty()) {
        tour_node.push_back(stack.back().first);
        tour_depth.push_back(hierarchy.depth(stack.back().first));
      }
    }
  }

  const size_t m = tour_node.size();
  log2_floor_.assign(m + 1, 0);
  for (size_t len = 2; len <= m; ++len) {
    log2_floor_[len] = static_cast<int8_t>(log2_floor_[len / 2] + 1);
  }

  // Rows shrink with the level (row k has m - 2^k + 1 windows); laying
  // them out back to back keeps the table compact and the two loads of a
  // query in adjacent rows.
  const int levels = log2_floor_[m] + 1;
  row_offset_.assign(levels + 1, 0);
  for (int k = 0; k < levels; ++k) {
    row_offset_[k + 1] = row_offset_[k] + (m - (size_t{1} << k) + 1);
  }
  sparse_.resize(row_offset_[levels]);
  for (size_t i = 0; i < m; ++i) {
    sparse_[i] = (static_cast<int64_t>(tour_depth[i]) << 32) |
                 static_cast<uint32_t>(tour_node[i]);
  }
  for (int k = 1; k < levels; ++k) {
    const int64_t* prev = sparse_.data() + row_offset_[k - 1];
    int64_t* row = sparse_.data() + row_offset_[k];
    const size_t half = size_t{1} << (k - 1);
    const size_t windows = m - (size_t{1} << k) + 1;
    for (size_t i = 0; i < windows; ++i) {
      row[i] = std::min(prev[i], prev[i + half]);
    }
  }
}

void LcaIndex::LcaDepthBatch(const NodeId* xs, const NodeId* ys, int32_t count,
                             int32_t* depths) const {
  // Two passes per tile: resolve the table addresses for every pair and
  // prefetch them, then take the minima. A single sparse-table probe is
  // two dependent loads into a table far bigger than L2; overlapping ~16
  // of them hides most of the miss latency.
  constexpr int32_t kTile = 16;
  const int64_t* low[kTile];
  const int64_t* high[kTile];
  for (int32_t begin = 0; begin < count; begin += kTile) {
    const int32_t n = std::min(kTile, count - begin);
    for (int32_t t = 0; t < n; ++t) {
      int32_t i = first_visit_[xs[begin + t]];
      int32_t j = first_visit_[ys[begin + t]];
      KJOIN_DCHECK(i >= 0 && j >= 0);
      if (i > j) std::swap(i, j);
      const int k = log2_floor_[j - i + 1];
      const int64_t* row = sparse_.data() + row_offset_[k];
      low[t] = row + i;
      high[t] = row + (j - (int32_t{1} << k) + 1);
      __builtin_prefetch(low[t]);
      __builtin_prefetch(high[t]);
    }
    for (int32_t t = 0; t < n; ++t) {
      depths[begin + t] = static_cast<int32_t>(std::min(*low[t], *high[t]) >> 32);
    }
  }
}

LcaIndex::LcaIndex(const Hierarchy& hierarchy, LcaTables tables, AdoptTag)
    : hierarchy_(&hierarchy),
      first_visit_(std::move(tables.first_visit)),
      sparse_(std::move(tables.sparse)),
      row_offset_(tables.row_offset.begin(), tables.row_offset.end()),
      log2_floor_(std::move(tables.log2_floor)) {}

LcaTables LcaIndex::tables() const {
  LcaTables tables;
  tables.first_visit = first_visit_;
  tables.sparse = sparse_;
  tables.row_offset.assign(row_offset_.begin(), row_offset_.end());
  tables.log2_floor = log2_floor_;
  return tables;
}

StatusOr<LcaIndex> LcaIndex::FromTables(const Hierarchy& hierarchy, LcaTables tables) {
  const auto reject = [](const std::string& what) {
    return InvalidArgumentError("lca tables: " + what);
  };
  const int64_t n = hierarchy.num_nodes();
  // An Euler tour of an n-node tree visits 2n - 1 positions.
  const uint64_t m = 2 * static_cast<uint64_t>(n) - 1;
  if (tables.first_visit.size() != static_cast<size_t>(n)) {
    return reject("first_visit size mismatch");
  }
  for (int64_t v = 0; v < n; ++v) {
    const int32_t i = tables.first_visit[v];
    if (i < 0 || static_cast<uint64_t>(i) >= m) return reject("first_visit out of range");
  }
  if (tables.log2_floor.size() != m + 1) return reject("log2_floor size mismatch");
  for (uint64_t len = 0; len <= m; ++len) {
    const int8_t expected = len < 2 ? 0 : static_cast<int8_t>(tables.log2_floor[len / 2] + 1);
    if (tables.log2_floor[len] != expected) return reject("log2_floor content mismatch");
  }
  const int levels = tables.log2_floor[m] + 1;
  if (tables.row_offset.size() != static_cast<size_t>(levels) + 1 ||
      tables.row_offset[0] != 0) {
    return reject("row_offset shape mismatch");
  }
  for (int k = 0; k < levels; ++k) {
    if (tables.row_offset[k + 1] - tables.row_offset[k] != m - (uint64_t{1} << k) + 1) {
      return reject("row_offset level width mismatch");
    }
  }
  if (tables.sparse.size() != tables.row_offset[levels]) return reject("sparse size mismatch");
  // Range-check every packed entry so queries can never return a node id
  // outside the hierarchy, whatever the table claims the minimum is.
  const int64_t height = hierarchy.height();
  for (const int64_t packed : tables.sparse) {
    const int64_t node = packed & 0xffffffff;
    const int64_t depth = packed >> 32;
    if (node >= n || depth < 0 || depth > height) return reject("packed entry out of range");
  }
  return LcaIndex(hierarchy, std::move(tables), AdoptTag{});
}

}  // namespace kjoin
