#include "hierarchy/hierarchy_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"

namespace kjoin {

std::string SerializeHierarchy(const Hierarchy& hierarchy) {
  std::ostringstream os;
  os << "# kjoin hierarchy: " << hierarchy.num_nodes() << " nodes, height "
     << hierarchy.height() << "\n";
  for (NodeId v = 0; v < hierarchy.num_nodes(); ++v) {
    const NodeId parent = (v == hierarchy.root()) ? kInvalidNode : hierarchy.parent(v);
    os << v << "\t" << parent << "\t" << hierarchy.label(v) << "\n";
  }
  return os.str();
}

std::optional<Hierarchy> ParseHierarchy(std::string_view text) {
  std::vector<NodeId> parents;
  std::vector<std::string> labels;
  int line_number = 0;
  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_number;
    const std::string_view line = StripAsciiWhitespace(raw_line);
    if (line.empty() || line[0] == '#') continue;
    const std::vector<std::string> fields = Split(line, '\t');
    if (fields.size() != 3) {
      KJOIN_LOG(WARNING) << "hierarchy line " << line_number << ": expected 3 fields, got "
                         << fields.size();
      return std::nullopt;
    }
    char* end = nullptr;
    const long id = std::strtol(fields[0].c_str(), &end, 10);
    if (*end != '\0' || id != static_cast<long>(parents.size())) {
      KJOIN_LOG(WARNING) << "hierarchy line " << line_number << ": ids must be dense, got '"
                         << fields[0] << "'";
      return std::nullopt;
    }
    const long parent = std::strtol(fields[1].c_str(), &end, 10);
    if (*end != '\0') {
      KJOIN_LOG(WARNING) << "hierarchy line " << line_number << ": bad parent '" << fields[1]
                         << "'";
      return std::nullopt;
    }
    if (id == 0) {
      if (parent != -1) {
        KJOIN_LOG(WARNING) << "hierarchy line " << line_number << ": root parent must be -1";
        return std::nullopt;
      }
    } else if (parent < 0 || parent >= id) {
      KJOIN_LOG(WARNING) << "hierarchy line " << line_number
                         << ": parent must precede child, got " << parent;
      return std::nullopt;
    }
    parents.push_back(static_cast<NodeId>(parent));
    labels.push_back(fields[2]);
  }
  if (parents.empty()) {
    KJOIN_LOG(WARNING) << "hierarchy text has no nodes";
    return std::nullopt;
  }
  return Hierarchy(std::move(parents), std::move(labels));
}

bool WriteHierarchyFile(const Hierarchy& hierarchy, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    KJOIN_LOG(WARNING) << "cannot open " << path << " for writing";
    return false;
  }
  out << SerializeHierarchy(hierarchy);
  return static_cast<bool>(out);
}

std::optional<Hierarchy> ReadHierarchyFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    KJOIN_LOG(WARNING) << "cannot open " << path;
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseHierarchy(buffer.str());
}

}  // namespace kjoin
