#include "hierarchy/hierarchy_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/fault_injection.h"
#include "common/string_util.h"
#include "hierarchy/hierarchy_builder.h"

namespace kjoin {
namespace {

// "<source>:<line>: <message>" — every parse error carries its location.
Status ParseError(std::string_view source_name, int line_number, std::string message) {
  return InvalidArgumentError(std::string(source_name) + ":" +
                              std::to_string(line_number) + ": " + std::move(message));
}

}  // namespace

std::string SerializeHierarchy(const Hierarchy& hierarchy) {
  std::ostringstream os;
  os << "# kjoin hierarchy: " << hierarchy.num_nodes() << " nodes, height "
     << hierarchy.height() << "\n";
  for (NodeId v = 0; v < hierarchy.num_nodes(); ++v) {
    const NodeId parent = (v == hierarchy.root()) ? kInvalidNode : hierarchy.parent(v);
    os << v << "\t" << parent << "\t" << hierarchy.label(v) << "\n";
  }
  return os.str();
}

StatusOr<Hierarchy> ParseHierarchy(std::string_view text, std::string_view source_name) {
  std::vector<NodeId> parents;
  std::vector<std::string> labels;
  int line_number = 0;
  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_number;
    const std::string_view line = StripAsciiWhitespace(raw_line);
    if (line.empty() || line[0] == '#') continue;
    const std::vector<std::string> fields = Split(line, '\t');
    if (fields.size() != 3) {
      return ParseError(source_name, line_number,
                        "expected 3 tab-separated fields, got " +
                            std::to_string(fields.size()));
    }
    char* end = nullptr;
    const long id = std::strtol(fields[0].c_str(), &end, 10);
    if (end == fields[0].c_str() || *end != '\0') {
      return ParseError(source_name, line_number, "bad node id '" + fields[0] + "'");
    }
    if (id != static_cast<long>(parents.size())) {
      return ParseError(source_name, line_number,
                        "ids must be dense and ascending: expected " +
                            std::to_string(parents.size()) + ", got '" + fields[0] + "'");
    }
    const long parent = std::strtol(fields[1].c_str(), &end, 10);
    if (end == fields[1].c_str() || *end != '\0') {
      return ParseError(source_name, line_number, "bad parent id '" + fields[1] + "'");
    }
    if (id == 0) {
      if (parent != -1) {
        return ParseError(source_name, line_number,
                          "root parent must be -1, got " + std::to_string(parent));
      }
    } else if (parent < 0 || parent >= id) {
      return ParseError(source_name, line_number,
                        "parent must precede child, got " + std::to_string(parent));
    }
    if (!IsValidUtf8(fields[2])) {
      return ParseError(source_name, line_number, "label is not valid UTF-8");
    }
    parents.push_back(static_cast<NodeId>(parent));
    labels.push_back(fields[2]);
  }
  if (parents.empty()) {
    return InvalidArgumentError(std::string(source_name) + ": hierarchy text has no nodes");
  }
  // The per-line checks above already enforce the Hierarchy invariants;
  // the checked factory keeps that true if the two ever drift.
  return BuildHierarchyChecked(std::move(parents), std::move(labels));
}

Status WriteHierarchyFile(const Hierarchy& hierarchy, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return NotFoundError("cannot open " + path + " for writing");
  }
  out << SerializeHierarchy(hierarchy);
  out.flush();
  if (!out || KJOIN_FAULT_POINT("hierarchy_io/write_fail")) {
    return DataLossError("write failed for " + path);
  }
  return OkStatus();
}

StatusOr<Hierarchy> ReadHierarchyFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in || KJOIN_FAULT_POINT("hierarchy_io/open_fail")) {
    return NotFoundError("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad() || KJOIN_FAULT_POINT("hierarchy_io/short_read")) {
    return DataLossError("read failed for " + path);
  }
  return ParseHierarchy(buffer.str(), path);
}

}  // namespace kjoin
