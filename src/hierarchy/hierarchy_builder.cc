#include "hierarchy/hierarchy_builder.h"

#include "common/logging.h"

namespace kjoin {

HierarchyBuilder::HierarchyBuilder(std::string root_label) {
  parents_.push_back(kInvalidNode);
  labels_.push_back(std::move(root_label));
  depths_.push_back(0);
}

NodeId HierarchyBuilder::AddChild(NodeId parent, std::string label) {
  StatusOr<NodeId> added = TryAddChild(parent, std::move(label));
  KJOIN_CHECK(added.ok()) << added.status();
  return *added;
}

StatusOr<NodeId> HierarchyBuilder::TryAddChild(NodeId parent, std::string label) {
  if (parent < 0 || parent >= num_nodes()) {
    return InvalidArgumentError("unknown parent node " + std::to_string(parent) +
                                " (have " + std::to_string(num_nodes()) + " nodes)");
  }
  parents_.push_back(parent);
  labels_.push_back(std::move(label));
  depths_.push_back(depths_[parent] + 1);
  return static_cast<NodeId>(parents_.size() - 1);
}

NodeId HierarchyBuilder::AddPath(const std::vector<std::string>& labels) {
  NodeId current = root();
  for (const std::string& label : labels) {
    // Linear scan over the current node's children; paths are short and
    // AddPath is a construction-time convenience, not a hot path.
    NodeId next = kInvalidNode;
    for (NodeId v = 0; v < num_nodes(); ++v) {
      if (parents_[v] == current && labels_[v] == label) {
        next = v;
        break;
      }
    }
    current = (next != kInvalidNode) ? next : AddChild(current, label);
  }
  return current;
}

Hierarchy HierarchyBuilder::Build() && {
  return Hierarchy(std::move(parents_), std::move(labels_));
}

StatusOr<Hierarchy> BuildHierarchyChecked(std::vector<NodeId> parents,
                                          std::vector<std::string> labels) {
  if (parents.empty()) {
    return InvalidArgumentError("hierarchy needs at least a root node");
  }
  if (parents.size() != labels.size()) {
    return InvalidArgumentError("parent/label arity mismatch: " +
                                std::to_string(parents.size()) + " parents vs " +
                                std::to_string(labels.size()) + " labels");
  }
  if (parents[0] != kInvalidNode) {
    return InvalidArgumentError("node 0 must be the root (parent -1, got " +
                                std::to_string(parents[0]) + ")");
  }
  for (size_t v = 1; v < parents.size(); ++v) {
    if (parents[v] < 0 || parents[v] >= static_cast<NodeId>(v)) {
      return InvalidArgumentError("node " + std::to_string(v) +
                                  ": parent must precede child, got " +
                                  std::to_string(parents[v]));
    }
  }
  return Hierarchy(std::move(parents), std::move(labels));
}

Hierarchy MakeFigure1Hierarchy() {
  HierarchyBuilder b("Root");
  const NodeId food = b.AddChild(b.root(), "Food");
  const NodeId western = b.AddChild(food, "WesternFood");
  const NodeId fastfood = b.AddChild(western, "Fastfood");
  b.AddChild(fastfood, "BurgerKing");
  b.AddChild(fastfood, "KFC");
  const NodeId pizza = b.AddChild(western, "Pizza");
  b.AddChild(pizza, "PizzaHut");
  b.AddChild(pizza, "Dominos");

  const NodeId location = b.AddChild(b.root(), "Location");
  const NodeId us = b.AddChild(location, "US");
  const NodeId ca = b.AddChild(us, "CA");
  const NodeId sf = b.AddChild(ca, "SanFrancisco");
  const NodeId mv = b.AddChild(sf, "MountainView");
  b.AddChild(mv, "GoogleHeadquarters");
  b.AddChild(sf, "PaloAlto");
  const NodeId ny = b.AddChild(us, "NY");
  const NodeId nyc = b.AddChild(ny, "NewYork");
  b.AddChild(nyc, "Manhattan");
  b.AddChild(nyc, "Brooklyn");
  return std::move(b).Build();
}

}  // namespace kjoin
