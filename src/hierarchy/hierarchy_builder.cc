#include "hierarchy/hierarchy_builder.h"

#include "common/logging.h"

namespace kjoin {

HierarchyBuilder::HierarchyBuilder(std::string root_label) {
  parents_.push_back(kInvalidNode);
  labels_.push_back(std::move(root_label));
  depths_.push_back(0);
}

NodeId HierarchyBuilder::AddChild(NodeId parent, std::string label) {
  KJOIN_CHECK(parent >= 0 && parent < num_nodes()) << "unknown parent " << parent;
  parents_.push_back(parent);
  labels_.push_back(std::move(label));
  depths_.push_back(depths_[parent] + 1);
  return static_cast<NodeId>(parents_.size() - 1);
}

NodeId HierarchyBuilder::AddPath(const std::vector<std::string>& labels) {
  NodeId current = root();
  for (const std::string& label : labels) {
    // Linear scan over the current node's children; paths are short and
    // AddPath is a construction-time convenience, not a hot path.
    NodeId next = kInvalidNode;
    for (NodeId v = 0; v < num_nodes(); ++v) {
      if (parents_[v] == current && labels_[v] == label) {
        next = v;
        break;
      }
    }
    current = (next != kInvalidNode) ? next : AddChild(current, label);
  }
  return current;
}

Hierarchy HierarchyBuilder::Build() && {
  return Hierarchy(std::move(parents_), std::move(labels_));
}

Hierarchy MakeFigure1Hierarchy() {
  HierarchyBuilder b("Root");
  const NodeId food = b.AddChild(b.root(), "Food");
  const NodeId western = b.AddChild(food, "WesternFood");
  const NodeId fastfood = b.AddChild(western, "Fastfood");
  b.AddChild(fastfood, "BurgerKing");
  b.AddChild(fastfood, "KFC");
  const NodeId pizza = b.AddChild(western, "Pizza");
  b.AddChild(pizza, "PizzaHut");
  b.AddChild(pizza, "Dominos");

  const NodeId location = b.AddChild(b.root(), "Location");
  const NodeId us = b.AddChild(location, "US");
  const NodeId ca = b.AddChild(us, "CA");
  const NodeId sf = b.AddChild(ca, "SanFrancisco");
  const NodeId mv = b.AddChild(sf, "MountainView");
  b.AddChild(mv, "GoogleHeadquarters");
  b.AddChild(sf, "PaloAlto");
  const NodeId ny = b.AddChild(us, "NY");
  const NodeId nyc = b.AddChild(ny, "NewYork");
  b.AddChild(nyc, "Manhattan");
  b.AddChild(nyc, "Brooklyn");
  return std::move(b).Build();
}

}  // namespace kjoin
