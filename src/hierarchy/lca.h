#ifndef KJOIN_HIERARCHY_LCA_H_
#define KJOIN_HIERARCHY_LCA_H_

// Constant-time lowest-common-ancestor queries.
//
// The paper computes element similarity as d_LCA / max(d_x, d_y) and calls
// LCA inside every edge-weight computation of every candidate bigraph, so
// the query cost matters. LcaIndex reduces LCA to range-minimum over the
// Euler tour and answers it with a sparse table: O(n log n) preprocessing,
// O(1) per query. Hierarchy::LowestCommonAncestorNaive is the paper's
// O(depth) walk, kept as the correctness reference and ablation baseline.
//
// Layout: the sparse table is one contiguous row-major array. Each entry
// packs (depth << 32) | node of the min-depth tour position in its range,
// so the RMQ compare is a single int64 min over two adjacent-row loads —
// no per-level vector indirection and no separate tour_depth_/tour_node_
// lookups on the query path. Packing is sound because within any query
// range [first_visit(x), first_visit(y)] the minimum depth is achieved
// only by the LCA, so whatever tour position the min picks, the packed
// node is the answer.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "common/status.h"
#include "hierarchy/hierarchy.h"

namespace kjoin {

// The serialized state of an LcaIndex (serve/snapshot.h): the Euler-tour
// first-visit array plus the packed sparse table. FromTables adopts these
// without re-running the O(n log n) RMQ build.
struct LcaTables {
  std::vector<int32_t> first_visit;
  std::vector<int64_t> sparse;
  std::vector<uint64_t> row_offset;
  std::vector<int8_t> log2_floor;
};

class LcaIndex {
 public:
  // The hierarchy must outlive the index.
  explicit LcaIndex(const Hierarchy& hierarchy);

  // Adopts a serialized table set. `tables` is untrusted: shapes, offsets
  // and every packed entry's node/depth range are validated (one linear
  // pass over the table, no RMQ rebuild); kInvalidArgument on any
  // inconsistency, so a corrupt-but-CRC-valid snapshot can never index
  // out of bounds.
  static StatusOr<LcaIndex> FromTables(const Hierarchy& hierarchy, LcaTables tables);

  // The serialized state, for the snapshot writer.
  LcaTables tables() const;

  NodeId Lca(NodeId x, NodeId y) const {
    return static_cast<NodeId>(PackedLca(x, y) & 0xffffffff);
  }

  // Depth of the LCA — the `d_{x,y}` of the paper's Definition 1.
  // Answered straight from the packed table, without touching the
  // hierarchy's depth array.
  int LcaDepth(NodeId x, NodeId y) const {
    return static_cast<int>(PackedLca(x, y) >> 32);
  }

  // Batched LcaDepth over `count` pairs: depths[t] = LcaDepth(xs[t], ys[t]).
  // Runs in prefetch tiles — the range endpoints for a tile of pairs are
  // computed (and their sparse-table lines prefetched) before any of the
  // tile's minima are taken, hiding the cache misses that dominate when
  // the verifier resolves a whole bigraph's edges at once.
  void LcaDepthBatch(const NodeId* xs, const NodeId* ys, int32_t count, int32_t* depths) const;

  const Hierarchy& hierarchy() const { return *hierarchy_; }

 private:
  struct AdoptTag {};
  LcaIndex(const Hierarchy& hierarchy, LcaTables tables, AdoptTag);

  // (depth << 32) | node of the shallowest tour entry between the two
  // nodes' first visits.
  int64_t PackedLca(NodeId x, NodeId y) const {
    int32_t i = first_visit_[x];
    int32_t j = first_visit_[y];
    KJOIN_DCHECK(i >= 0 && j >= 0);
    if (i > j) std::swap(i, j);
    const int k = log2_floor_[j - i + 1];
    const int64_t* row = sparse_.data() + row_offset_[k];
    return std::min(row[i], row[j - (int32_t{1} << k) + 1]);
  }

  const Hierarchy* hierarchy_;
  std::vector<int32_t> first_visit_;  // node -> first index in the Euler tour
  // Row-major sparse table over the Euler tour: level k starts at
  // row_offset_[k] and holds m - 2^k + 1 packed (depth << 32) | node
  // entries, one per tour window [i, i + 2^k).
  std::vector<int64_t> sparse_;
  std::vector<size_t> row_offset_;
  std::vector<int8_t> log2_floor_;  // log2_floor_[len] = floor(log2(len))
};

}  // namespace kjoin

#endif  // KJOIN_HIERARCHY_LCA_H_
