#ifndef KJOIN_HIERARCHY_LCA_H_
#define KJOIN_HIERARCHY_LCA_H_

// Constant-time lowest-common-ancestor queries.
//
// The paper computes element similarity as d_LCA / max(d_x, d_y) and calls
// LCA inside every edge-weight computation of every candidate bigraph, so
// the query cost matters. LcaIndex reduces LCA to range-minimum over the
// Euler tour and answers it with a sparse table: O(n log n) preprocessing,
// O(1) per query. Hierarchy::LowestCommonAncestorNaive is the paper's
// O(depth) walk, kept as the correctness reference and ablation baseline.

#include <cstdint>
#include <vector>

#include "hierarchy/hierarchy.h"

namespace kjoin {

class LcaIndex {
 public:
  // The hierarchy must outlive the index.
  explicit LcaIndex(const Hierarchy& hierarchy);

  NodeId Lca(NodeId x, NodeId y) const;

  // Depth of the LCA — the `d_{x,y}` of the paper's Definition 1.
  int LcaDepth(NodeId x, NodeId y) const { return hierarchy_->depth(Lca(x, y)); }

  const Hierarchy& hierarchy() const { return *hierarchy_; }

 private:
  const Hierarchy* hierarchy_;
  std::vector<int32_t> first_visit_;   // node -> first index in the Euler tour
  std::vector<NodeId> tour_node_;      // Euler tour nodes
  std::vector<int32_t> tour_depth_;    // depths along the tour
  // sparse_[k][i] = index (into the tour) of the min-depth entry in
  // [i, i + 2^k).
  std::vector<std::vector<int32_t>> sparse_;
  std::vector<int8_t> log2_floor_;     // log2_floor_[len] = floor(log2(len))
};

}  // namespace kjoin

#endif  // KJOIN_HIERARCHY_LCA_H_
