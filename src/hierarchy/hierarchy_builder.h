#ifndef KJOIN_HIERARCHY_HIERARCHY_BUILDER_H_
#define KJOIN_HIERARCHY_HIERARCHY_BUILDER_H_

// Incremental construction of a Hierarchy.
//
//   HierarchyBuilder builder("Root");
//   NodeId food = builder.AddChild(builder.root(), "Food");
//   NodeId pizza = builder.AddChild(food, "Pizza");
//   Hierarchy tree = std::move(builder).Build();
//
// Also provides MakeFigure1Hierarchy(), the food/location tree the paper
// uses as its running example, which the unit tests replay the paper's
// worked numbers against.

#include <string>
#include <vector>

#include "common/status.h"
#include "hierarchy/hierarchy.h"

namespace kjoin {

class HierarchyBuilder {
 public:
  explicit HierarchyBuilder(std::string root_label = "Root");

  NodeId root() const { return 0; }
  int64_t num_nodes() const { return static_cast<int64_t>(parents_.size()); }
  int depth(NodeId node) const { return depths_[node]; }

  // Adds a child of `parent` (which must already exist) and returns its id.
  NodeId AddChild(NodeId parent, std::string label);

  // Like AddChild but reports an unknown parent as kInvalidArgument
  // instead of aborting — the entry point for parents taken from
  // untrusted input.
  StatusOr<NodeId> TryAddChild(NodeId parent, std::string label);

  // Adds label-path root/.../labels.back(), reusing existing nodes with
  // matching labels along the way. Returns the final node.
  NodeId AddPath(const std::vector<std::string>& labels);

  // Consumes the builder.
  Hierarchy Build() &&;

 private:
  std::vector<NodeId> parents_;
  std::vector<std::string> labels_;
  std::vector<int> depths_;
};

// Validates an untrusted parent array (non-empty, node 0 the root, every
// parent preceding its child) and builds the Hierarchy, reporting
// violations as kInvalidArgument instead of tripping the constructor's
// internal CHECKs. The parsers (hierarchy_io) funnel through this.
StatusOr<Hierarchy> BuildHierarchyChecked(std::vector<NodeId> parents,
                                          std::vector<std::string> labels);

// The knowledge hierarchy of the paper's Figure 1 (food & US locations).
// Node labels match the paper: Root, Food, Location, WesternFood, Fastfood,
// Pizza, BurgerKing, KFC, PizzaHut, Dominos, US, CA, NY, SanFrancisco,
// MountainView, PaloAlto, NewYork, Manhattan, Brooklyn,
// GoogleHeadquarters.
Hierarchy MakeFigure1Hierarchy();

}  // namespace kjoin

#endif  // KJOIN_HIERARCHY_HIERARCHY_BUILDER_H_
