#ifndef KJOIN_HIERARCHY_HIERARCHY_H_
#define KJOIN_HIERARCHY_HIERARCHY_H_

// The knowledge hierarchy: an immutable rooted, labeled tree.
//
// K-Join (Shang et al., ICDE 2017) models the knowledge base as a tree T.
// Elements of objects are mapped to tree nodes; the element similarity
// (Definition 1) is d_LCA / max(d_x, d_y), where d_x is the depth of node x
// and the root has depth 0. This class stores the tree plus the derived
// data every K-Join component consumes: depths, children, label lookup and
// ancestor-at-depth walks. Instances are created by HierarchyBuilder,
// HierarchyGenerator, ConvertDagToTree, or ParseHierarchy.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace kjoin {

// Index of a node inside one Hierarchy. Nodes are dense: 0..num_nodes()-1,
// with 0 always the root. Parents always precede children.
using NodeId = int32_t;

inline constexpr NodeId kInvalidNode = -1;

// Shape statistics in the form the paper reports (its Table 2).
struct HierarchyStats {
  int64_t num_nodes = 0;
  int height = 0;           // max depth of any node
  double avg_fanout = 0.0;  // over internal (non-leaf) nodes
  int max_fanout = 0;
  int min_fanout = 0;  // over internal nodes
  int64_t num_leaves = 0;
  double avg_leaf_depth = 0.0;
};

// The full precomputed state of a Hierarchy, as serialized by the index
// snapshot format (serve/snapshot.h). FromParts validates everything in
// O(n) and adopts the arrays without re-deriving them.
struct HierarchyParts {
  std::vector<NodeId> parents;
  std::vector<std::string> labels;
  std::vector<int> depths;
  std::vector<int32_t> child_offsets;
  std::vector<NodeId> child_nodes;
  std::vector<NodeId> leaves;
  int height = 0;
};

class Hierarchy {
 public:
  // Use HierarchyBuilder to construct instances.
  Hierarchy(std::vector<NodeId> parents, std::vector<std::string> labels);

  // Adopts precomputed arrays (snapshot restore). Unlike the constructor
  // — which terminates on broken invariants, since its callers derive the
  // arrays themselves — this treats `parts` as untrusted input: every
  // derived array is checked for exact consistency with `parents` in
  // O(n), and any mismatch returns kInvalidArgument instead of aborting.
  // Only the label hash index is rebuilt.
  static StatusOr<Hierarchy> FromParts(HierarchyParts parts);

  Hierarchy(const Hierarchy&) = delete;
  Hierarchy& operator=(const Hierarchy&) = delete;
  Hierarchy(Hierarchy&&) = default;
  Hierarchy& operator=(Hierarchy&&) = default;

  int64_t num_nodes() const { return static_cast<int64_t>(parents_.size()); }
  NodeId root() const { return 0; }

  NodeId parent(NodeId node) const { return parents_[CheckId(node)]; }
  int depth(NodeId node) const { return depths_[CheckId(node)]; }
  const std::string& label(NodeId node) const { return labels_[CheckId(node)]; }
  // Children in ascending id order. Adjacency is stored in CSR form
  // (child_offsets_ + child_nodes_), so the whole tree's child lists are
  // one contiguous array and a node's list is a view into it.
  std::span<const NodeId> children(NodeId node) const {
    CheckId(node);
    return {child_nodes_.data() + child_offsets_[node],
            child_nodes_.data() + child_offsets_[node + 1]};
  }
  bool IsLeaf(NodeId node) const {
    return child_offsets_[CheckId(node)] == child_offsets_[node + 1];
  }

  // Max depth over all nodes (root alone => 0).
  int height() const { return height_; }

  // All leaf nodes in id order. K-Join treats leaves as the entity
  // vocabulary that records are drawn from.
  const std::vector<NodeId>& leaves() const { return leaves_; }

  // All nodes carrying `label` (several when a DAG was unfolded into a
  // tree, or when distinct entities share a surface form). Empty vector if
  // none. The returned reference is valid for the Hierarchy's lifetime.
  const std::vector<NodeId>& NodesWithLabel(std::string_view label) const;

  // The unique node with `label`, or nullopt when absent/ambiguous.
  std::optional<NodeId> FindByLabel(std::string_view label) const;

  // The ancestor of `node` at depth `target_depth`. Requires
  // 0 <= target_depth <= depth(node). O(depth - target_depth).
  NodeId AncestorAtDepth(NodeId node, int target_depth) const;

  // True iff `ancestor` lies on the root path of `node` (a node is its own
  // ancestor).
  bool IsAncestor(NodeId ancestor, NodeId node) const;

  // The paper's O(d_x + d_y) bottom-up LCA: lift the deeper node to the
  // shallower depth, then walk both up in lock step. LcaIndex provides the
  // O(1) alternative.
  NodeId LowestCommonAncestorNaive(NodeId x, NodeId y) const;

  HierarchyStats ComputeStats() const;

  // Raw derived arrays, for the snapshot writer (serve/snapshot.h).
  const std::vector<NodeId>& parents() const { return parents_; }
  const std::vector<std::string>& labels() const { return labels_; }
  const std::vector<int>& depths() const { return depths_; }
  const std::vector<int32_t>& child_offsets() const { return child_offsets_; }
  const std::vector<NodeId>& child_nodes() const { return child_nodes_; }

 private:
  struct AdoptTag {};
  Hierarchy(HierarchyParts parts, AdoptTag);

  NodeId CheckId(NodeId node) const;

  std::vector<NodeId> parents_;       // parents_[0] == kInvalidNode
  std::vector<std::string> labels_;   // node labels, not necessarily unique
  std::vector<int> depths_;
  // CSR adjacency: node v's children are child_nodes_[child_offsets_[v] ..
  // child_offsets_[v + 1]), ascending. One allocation for the whole tree.
  std::vector<int32_t> child_offsets_;  // size num_nodes() + 1
  std::vector<NodeId> child_nodes_;     // size num_nodes() - 1
  std::vector<NodeId> leaves_;
  int height_ = 0;
  std::unordered_map<std::string, std::vector<NodeId>> label_index_;
};

}  // namespace kjoin

#endif  // KJOIN_HIERARCHY_HIERARCHY_H_
