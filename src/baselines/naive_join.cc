#include "baselines/naive_join.h"

#include "common/timer.h"

namespace kjoin {

NaiveJoin::NaiveJoin(const Hierarchy& hierarchy, KJoinOptions options)
    : options_(options),
      lca_(hierarchy),
      element_sim_(lca_, options.element_metric),
      object_sim_(element_sim_, options.delta, options.set_metric) {}

JoinResult NaiveJoin::SelfJoin(const std::vector<Object>& objects) const {
  JoinResult result;
  WallTimer timer;
  const int32_t n = static_cast<int32_t>(objects.size());
  result.stats.num_objects_left = n;
  result.stats.num_objects_right = n;
  for (int32_t x = 0; x < n; ++x) {
    for (int32_t y = x + 1; y < n; ++y) {
      ++result.stats.candidates;
      if (object_sim_.Similarity(objects[x], objects[y]) >= options_.tau - 1e-9) {
        result.pairs.emplace_back(x, y);
      }
    }
  }
  result.stats.results = static_cast<int64_t>(result.pairs.size());
  result.stats.total_seconds = timer.ElapsedSeconds();
  result.stats.verify_seconds = result.stats.total_seconds;
  return result;
}

JoinResult NaiveJoin::Join(const std::vector<Object>& left,
                           const std::vector<Object>& right) const {
  JoinResult result;
  WallTimer timer;
  result.stats.num_objects_left = static_cast<int64_t>(left.size());
  result.stats.num_objects_right = static_cast<int64_t>(right.size());
  for (int32_t l = 0; l < static_cast<int32_t>(left.size()); ++l) {
    for (int32_t r = 0; r < static_cast<int32_t>(right.size()); ++r) {
      ++result.stats.candidates;
      if (object_sim_.Similarity(left[l], right[r]) >= options_.tau - 1e-9) {
        result.pairs.emplace_back(l, r);
      }
    }
  }
  result.stats.results = static_cast<int64_t>(result.pairs.size());
  result.stats.total_seconds = timer.ElapsedSeconds();
  result.stats.verify_seconds = result.stats.total_seconds;
  return result;
}

}  // namespace kjoin
