#ifndef KJOIN_BASELINES_PPJOIN_H_
#define KJOIN_BASELINES_PPJOIN_H_

// PPJoin (Xiao, Wang, Lin, Yu: "Efficient similarity joins for near
// duplicate detection", WWW 2008) — the classic exact token-Jaccard set
// similarity join with prefix and positional filtering.
//
// K-Join's related work builds on this line; having it as a baseline
// separates the cost of *knowledge-aware* matching from plain set
// matching. Records are treated as token multisets (duplicate tokens are
// distinguished by occurrence number, the standard reduction).

#include <string>
#include <vector>

#include "core/kjoin.h"  // JoinResult

namespace kjoin {

struct PpJoinOptions {
  double tau = 0.8;  // Jaccard threshold
  // Positional filter on/off (ablation; the prefix filter always runs).
  bool position_filter = true;
};

class PpJoin {
 public:
  explicit PpJoin(PpJoinOptions options);

  JoinResult SelfJoin(const std::vector<std::vector<std::string>>& records) const;

  // Exact multiset Jaccard (the verification semantics).
  static double Similarity(const std::vector<std::string>& x,
                           const std::vector<std::string>& y);

  const PpJoinOptions& options() const { return options_; }

 private:
  PpJoinOptions options_;
};

}  // namespace kjoin

#endif  // KJOIN_BASELINES_PPJOIN_H_
