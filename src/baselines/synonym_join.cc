#include "baselines/synonym_join.h"

#include <algorithm>
#include <unordered_map>

#include "common/timer.h"
#include "core/inverted_index.h"
#include "core/prefix.h"
#include "text/tokenizer.h"

namespace kjoin {
namespace {

std::string Normalize(const std::string& token) {
  static const Tokenizer* const kTokenizer = new Tokenizer();
  return kTokenizer->Normalize(token);
}

// Multiset intersection size.
int64_t MultisetOverlap(const std::vector<std::string>& x, const std::vector<std::string>& y) {
  std::unordered_map<std::string, int32_t> counts;
  for (const std::string& token : x) ++counts[token];
  int64_t overlap = 0;
  for (const std::string& token : y) {
    auto it = counts.find(token);
    if (it != counts.end() && it->second > 0) {
      --it->second;
      ++overlap;
    }
  }
  return overlap;
}

}  // namespace

SynonymJoin::SynonymJoin(const std::vector<std::pair<std::string, std::string>>& rules,
                         SynonymJoinOptions options)
    : options_(options) {
  rules_.reserve(rules.size());
  for (const auto& [alias, canonical] : rules) {
    rules_.emplace_back(Normalize(alias), Normalize(canonical));
  }
  std::sort(rules_.begin(), rules_.end());
  rules_.erase(std::unique(rules_.begin(), rules_.end(),
                           [](const auto& a, const auto& b) { return a.first == b.first; }),
               rules_.end());
}

std::string SynonymJoin::Canonicalize(const std::string& token) const {
  const std::string normalized = Normalize(token);
  auto it = std::lower_bound(rules_.begin(), rules_.end(), normalized,
                             [](const auto& rule, const std::string& key) {
                               return rule.first < key;
                             });
  if (it != rules_.end() && it->first == normalized) return it->second;
  return normalized;
}

std::vector<std::string> SynonymJoin::CanonicalTokens(
    const std::vector<std::string>& record) const {
  std::vector<std::string> canonical;
  canonical.reserve(record.size());
  for (const std::string& token : record) canonical.push_back(Canonicalize(token));
  return canonical;
}

double SynonymJoin::Similarity(const std::vector<std::string>& x,
                               const std::vector<std::string>& y) const {
  if (x.empty() && y.empty()) return 1.0;
  const std::vector<std::string> cx = CanonicalTokens(x);
  const std::vector<std::string> cy = CanonicalTokens(y);
  const double overlap = static_cast<double>(MultisetOverlap(cx, cy));
  const double denom = static_cast<double>(cx.size()) + cy.size() - overlap;
  return denom <= 0.0 ? 1.0 : overlap / denom;
}

JoinResult SynonymJoin::SelfJoin(const std::vector<std::vector<std::string>>& records) const {
  JoinResult result;
  result.stats.num_objects_left = static_cast<int64_t>(records.size());
  result.stats.num_objects_right = result.stats.num_objects_left;
  WallTimer total_timer;

  WallTimer phase_timer;
  std::vector<std::vector<std::string>> canonical(records.size());
  std::unordered_map<std::string, SigId> token_ids;
  auto intern = [&](const std::string& token) {
    auto [it, inserted] = token_ids.emplace(token, static_cast<SigId>(token_ids.size()));
    return it->second;
  };
  std::vector<std::vector<Signature>> sigs(records.size());
  GlobalSignatureOrder order;
  for (size_t i = 0; i < records.size(); ++i) {
    canonical[i] = CanonicalTokens(records[i]);
    for (int32_t t = 0; t < static_cast<int32_t>(canonical[i].size()); ++t) {
      sigs[i].push_back({intern(canonical[i][t]), t, 1.0f});
    }
    order.CountObject(sigs[i]);
    result.stats.total_signatures += static_cast<int64_t>(sigs[i].size());
  }
  order.Finalize();

  std::vector<int32_t> prefix_len(records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    SortByGlobalOrder(order, &sigs[i]);
    const int32_t tau_s = MinSimilarElements(static_cast<int32_t>(canonical[i].size()),
                                             options_.tau, SetMetric::kJaccard);
    prefix_len[i] = PrefixLengthDistinct(sigs[i], tau_s);
    result.stats.prefix_signatures += prefix_len[i];
  }
  result.stats.signature_seconds = phase_timer.ElapsedSeconds();

  InvertedIndex index(order.num_signatures());
  std::vector<int32_t> last_probe(records.size(), -1);
  StopWatch filter_watch, verify_watch;
  for (int32_t x = 0; x < static_cast<int32_t>(records.size()); ++x) {
    filter_watch.Start();
    std::vector<int32_t> candidates;
    for (int32_t k = 0; k < prefix_len[x]; ++k) {
      const int32_t rank = order.Rank(sigs[x][k].id);
      for (int32_t y : index.List(rank)) {
        if (last_probe[y] == x) continue;
        last_probe[y] = x;
        candidates.push_back(y);
      }
    }
    filter_watch.Stop();

    verify_watch.Start();
    result.stats.candidates += static_cast<int64_t>(candidates.size());
    for (int32_t y : candidates) {
      ++result.stats.verify.pairs_verified;
      const double needed =
          MinFuzzyOverlap(static_cast<int32_t>(canonical[x].size()),
                          static_cast<int32_t>(canonical[y].size()), options_.tau,
                          SetMetric::kJaccard);
      if (static_cast<double>(MultisetOverlap(canonical[x], canonical[y])) >= needed - 1e-9) {
        result.pairs.emplace_back(y, x);
      }
    }
    verify_watch.Stop();

    filter_watch.Start();
    for (int32_t k = 0; k < prefix_len[x]; ++k) {
      index.Add(order.Rank(sigs[x][k].id), x);
    }
    filter_watch.Stop();
  }

  result.stats.filter_seconds = filter_watch.TotalSeconds();
  result.stats.verify_seconds = verify_watch.TotalSeconds();
  result.stats.results = static_cast<int64_t>(result.pairs.size());
  result.stats.verify.results = result.stats.results;
  result.stats.total_seconds = total_timer.ElapsedSeconds();
  return result;
}

}  // namespace kjoin
