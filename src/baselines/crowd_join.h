#ifndef KJOIN_BASELINES_CROWD_JOIN_H_
#define KJOIN_BASELINES_CROWD_JOIN_H_

// Crowdsourced entity-resolution baseline (CrowdER-style; Wang, Kraska,
// Franklin, Feng, VLDB 2012), with a *simulated* crowd.
//
// The real system blocks pairs with a cheap machine similarity and asks
// human workers to label the survivors. We cannot hire workers inside a
// benchmark, so the oracle answers from ground truth with configurable
// error rates (DESIGN.md §3): a duplicate pair is confirmed with
// probability 1 − false_negative_rate, a non-duplicate is wrongly
// confirmed with probability false_positive_rate. This reproduces the
// published profile — near-perfect recall bounded by blocking, precision
// dented by worker noise.

#include <cstdint>
#include <string>
#include <vector>

#include "core/kjoin.h"  // JoinResult

namespace kjoin {

struct CrowdJoinOptions {
  // Pairs must share >= 1 token and reach this token-Jaccard to be asked.
  double blocking_jaccard = 0.10;
  double false_negative_rate = 0.03;
  double false_positive_rate = 0.004;
  uint64_t seed = 17;
};

class CrowdJoin {
 public:
  explicit CrowdJoin(CrowdJoinOptions options);

  // `clusters[i]` is record i's ground-truth entity cluster (-1 = unique).
  JoinResult SelfJoin(const std::vector<std::vector<std::string>>& records,
                      const std::vector<int32_t>& clusters) const;

 private:
  CrowdJoinOptions options_;
};

}  // namespace kjoin

#endif  // KJOIN_BASELINES_CROWD_JOIN_H_
