#ifndef KJOIN_BASELINES_NAIVE_JOIN_H_
#define KJOIN_BASELINES_NAIVE_JOIN_H_

// Exhaustive all-pairs knowledge-aware join.
//
// Computes the exact SIMδ of every pair with the Hungarian matcher and no
// filtering. O(n²) — the correctness oracle the K-Join tests compare
// against, and the "no filter" datapoint for ablations.

#include <vector>

#include "core/kjoin.h"

namespace kjoin {

class NaiveJoin {
 public:
  // Only delta/tau/element_metric/set_metric of `options` are used.
  NaiveJoin(const Hierarchy& hierarchy, KJoinOptions options);

  JoinResult SelfJoin(const std::vector<Object>& objects) const;
  JoinResult Join(const std::vector<Object>& left, const std::vector<Object>& right) const;

 private:
  KJoinOptions options_;
  LcaIndex lca_;
  ElementSimilarity element_sim_;
  ObjectSimilarity object_sim_;
};

}  // namespace kjoin

#endif  // KJOIN_BASELINES_NAIVE_JOIN_H_
