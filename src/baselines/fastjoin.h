#ifndef KJOIN_BASELINES_FASTJOIN_H_
#define KJOIN_BASELINES_FASTJOIN_H_

// FastJoin baseline (Wang, Li, Feng: "Fast-Join: an efficient method for
// fuzzy token matching based string similarity join", ICDE 2011).
//
// Fuzzy-token Jaccard: two tokens match when their normalized edit
// similarity is >= δ; the fuzzy overlap of two records is the
// maximum-weight matching of the token bigraph; the record similarity is
// the fuzzy Jaccard of that overlap. No knowledge hierarchy.
//
// Filtering (reimplemented at the fidelity K-Join's evaluation needs —
// DESIGN.md §3): every token contributes its padded q-grams as
// signatures; δ-similar tokens always share a q-gram (for q = 2 and
// δ >= 0.5 the count-filter bound is strictly positive), so the
// distinct-token suffix rule of K-Join's path prefix applies verbatim,
// with grams in place of path signatures. Gram signatures collide across
// unrelated tokens, which is why FastJoin generates orders of magnitude
// more candidates than K-Join (paper Fig. 12/13).

#include <cstdint>
#include <string>
#include <vector>

#include "core/kjoin.h"  // JoinResult / JoinStats

namespace kjoin {

struct FastJoinOptions {
  double delta = 0.8;  // token edit-similarity threshold
  double tau = 0.8;    // record fuzzy-Jaccard threshold
  int qgram_q = 2;
};

class FastJoin {
 public:
  explicit FastJoin(FastJoinOptions options);

  // Records are raw token lists (tokens should be normalized).
  JoinResult SelfJoin(const std::vector<std::vector<std::string>>& records) const;

  // Exact fuzzy-token Jaccard between two records.
  double Similarity(const std::vector<std::string>& x,
                    const std::vector<std::string>& y) const;

  const FastJoinOptions& options() const { return options_; }

 private:
  double FuzzyOverlap(const std::vector<std::string>& x,
                      const std::vector<std::string>& y) const;

  FastJoinOptions options_;
};

}  // namespace kjoin

#endif  // KJOIN_BASELINES_FASTJOIN_H_
