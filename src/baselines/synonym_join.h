#ifndef KJOIN_BASELINES_SYNONYM_JOIN_H_
#define KJOIN_BASELINES_SYNONYM_JOIN_H_

// Synonym-rule baseline (Lu, Lin, Wang, Li, Wang: "String similarity
// measures and joins with synonyms", SIGMOD 2013).
//
// Token-based Jaccard where every token is first rewritten to its
// canonical form through the synonym rule table (alias -> canonical);
// records are then compared as multisets with exact token matching. This
// captures the full-expansion variant of the paper: synonyms are bridged,
// but typos and hierarchy (sibling-category) errors are not — exactly the
// quality profile K-Join's §7.2 reports for it.
//
// Filtering: classic prefix filter over canonical tokens (document
// frequency ascending), sound for exact multiset Jaccard.

#include <string>
#include <utility>
#include <vector>

#include "core/kjoin.h"  // JoinResult

namespace kjoin {

struct SynonymJoinOptions {
  double tau = 0.8;
};

class SynonymJoin {
 public:
  // `rules` are (alias, canonical) pairs; both sides are normalized to
  // lower-case alphanumerics. An alias maps to exactly one canonical form
  // (later duplicates are ignored).
  SynonymJoin(const std::vector<std::pair<std::string, std::string>>& rules,
              SynonymJoinOptions options);

  JoinResult SelfJoin(const std::vector<std::vector<std::string>>& records) const;

  // Multiset Jaccard over canonicalized tokens.
  double Similarity(const std::vector<std::string>& x,
                    const std::vector<std::string>& y) const;

  std::string Canonicalize(const std::string& token) const;

 private:
  std::vector<std::string> CanonicalTokens(const std::vector<std::string>& record) const;

  SynonymJoinOptions options_;
  std::vector<std::pair<std::string, std::string>> rules_;  // sorted by alias
};

}  // namespace kjoin

#endif  // KJOIN_BASELINES_SYNONYM_JOIN_H_
