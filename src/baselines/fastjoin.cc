#include "baselines/fastjoin.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"
#include "common/timer.h"
#include "core/inverted_index.h"
#include "core/prefix.h"
#include "matching/bigraph.h"
#include "matching/hungarian.h"
#include "text/edit_distance.h"
#include "text/qgram_index.h"

namespace kjoin {

FastJoin::FastJoin(FastJoinOptions options) : options_(options) {
  KJOIN_CHECK(options.delta >= 0.5 && options.delta <= 1.0)
      << "the q-gram witness argument needs delta >= 0.5";
  KJOIN_CHECK_GE(options.qgram_q, 2);
}

double FastJoin::FuzzyOverlap(const std::vector<std::string>& x,
                              const std::vector<std::string>& y) const {
  Bigraph graph(static_cast<int32_t>(x.size()), static_cast<int32_t>(y.size()));
  for (int32_t i = 0; i < static_cast<int32_t>(x.size()); ++i) {
    for (int32_t j = 0; j < static_cast<int32_t>(y.size()); ++j) {
      if (x[i] == y[j]) {
        graph.AddEdge(i, j, 1.0);
        continue;
      }
      if (!EditSimilarityAtLeast(x[i], y[j], options_.delta)) continue;
      graph.AddEdge(i, j, EditSimilarity(x[i], y[j]));
    }
  }
  return MaxWeightMatching(graph);
}

double FastJoin::Similarity(const std::vector<std::string>& x,
                            const std::vector<std::string>& y) const {
  if (x.empty() && y.empty()) return 1.0;
  const double overlap = FuzzyOverlap(x, y);
  const double denom = static_cast<double>(x.size()) + y.size() - overlap;
  return denom <= 0.0 ? 1.0 : overlap / denom;
}

JoinResult FastJoin::SelfJoin(const std::vector<std::vector<std::string>>& records) const {
  JoinResult result;
  result.stats.num_objects_left = static_cast<int64_t>(records.size());
  result.stats.num_objects_right = result.stats.num_objects_left;
  WallTimer total_timer;

  // Signatures: padded q-grams of every token, interned to dense SigIds.
  WallTimer phase_timer;
  std::unordered_map<std::string, SigId> gram_ids;
  auto intern = [&](const std::string& gram) {
    auto [it, inserted] = gram_ids.emplace(gram, static_cast<SigId>(gram_ids.size()));
    return it->second;
  };
  std::vector<std::vector<Signature>> sigs(records.size());
  GlobalSignatureOrder order;
  for (size_t i = 0; i < records.size(); ++i) {
    for (int32_t t = 0; t < static_cast<int32_t>(records[i].size()); ++t) {
      for (const std::string& gram : QGramIndex::PaddedQGrams(records[i][t], options_.qgram_q)) {
        sigs[i].push_back({intern(gram), t, 1.0f});
      }
    }
    // Dedupe (gram, token) repeats to keep prefix lists tight.
    std::sort(sigs[i].begin(), sigs[i].end(), [](const Signature& a, const Signature& b) {
      if (a.id != b.id) return a.id < b.id;
      return a.element < b.element;
    });
    sigs[i].erase(std::unique(sigs[i].begin(), sigs[i].end(),
                              [](const Signature& a, const Signature& b) {
                                return a.id == b.id && a.element == b.element;
                              }),
                  sigs[i].end());
    order.CountObject(sigs[i]);
    result.stats.total_signatures += static_cast<int64_t>(sigs[i].size());
  }
  order.Finalize();

  std::vector<int32_t> prefix_len(records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    SortByGlobalOrder(order, &sigs[i]);
    const int32_t tau_s = MinSimilarElements(static_cast<int32_t>(records[i].size()),
                                             options_.tau, SetMetric::kJaccard);
    prefix_len[i] = PrefixLengthDistinct(sigs[i], tau_s);
    result.stats.prefix_signatures += prefix_len[i];
  }
  result.stats.signature_seconds = phase_timer.ElapsedSeconds();

  InvertedIndex index(order.num_signatures());
  std::vector<int32_t> last_probe(records.size(), -1);
  StopWatch filter_watch, verify_watch;
  for (int32_t x = 0; x < static_cast<int32_t>(records.size()); ++x) {
    filter_watch.Start();
    std::vector<int32_t> candidates;
    int32_t previous_rank = -1;
    for (int32_t k = 0; k < prefix_len[x]; ++k) {
      const int32_t rank = order.Rank(sigs[x][k].id);
      if (rank == previous_rank) continue;
      previous_rank = rank;
      for (int32_t y : index.List(rank)) {
        if (last_probe[y] == x) continue;
        last_probe[y] = x;
        candidates.push_back(y);
      }
    }
    filter_watch.Stop();

    verify_watch.Start();
    result.stats.candidates += static_cast<int64_t>(candidates.size());
    for (int32_t y : candidates) {
      ++result.stats.verify.pairs_verified;
      // Count filter on sizes before the expensive matching.
      const double needed =
          MinFuzzyOverlap(static_cast<int32_t>(records[x].size()),
                          static_cast<int32_t>(records[y].size()), options_.tau,
                          SetMetric::kJaccard);
      if (static_cast<double>(std::min(records[x].size(), records[y].size())) <
          needed - 1e-9) {
        ++result.stats.verify.pruned_by_count;
        continue;
      }
      ++result.stats.verify.hungarian_runs;
      if (FuzzyOverlap(records[x], records[y]) >= needed - 1e-9) {
        result.pairs.emplace_back(y, x);
      }
    }
    verify_watch.Stop();

    filter_watch.Start();
    previous_rank = -1;
    for (int32_t k = 0; k < prefix_len[x]; ++k) {
      const int32_t rank = order.Rank(sigs[x][k].id);
      if (rank == previous_rank) continue;
      previous_rank = rank;
      index.Add(rank, x);
    }
    filter_watch.Stop();
  }

  result.stats.filter_seconds = filter_watch.TotalSeconds();
  result.stats.verify_seconds = verify_watch.TotalSeconds();
  result.stats.results = static_cast<int64_t>(result.pairs.size());
  result.stats.verify.results = result.stats.results;
  result.stats.total_seconds = total_timer.ElapsedSeconds();
  return result;
}

}  // namespace kjoin
