#include "baselines/crowd_join.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "common/rng.h"
#include "common/timer.h"
#include "text/tokenizer.h"

namespace kjoin {

CrowdJoin::CrowdJoin(CrowdJoinOptions options) : options_(options) {}

JoinResult CrowdJoin::SelfJoin(const std::vector<std::vector<std::string>>& records,
                               const std::vector<int32_t>& clusters) const {
  KJOIN_CHECK_EQ(records.size(), clusters.size());
  JoinResult result;
  result.stats.num_objects_left = static_cast<int64_t>(records.size());
  result.stats.num_objects_right = result.stats.num_objects_left;
  WallTimer total_timer;
  Rng rng(options_.seed);
  const Tokenizer tokenizer;

  // Blocking: shared-token candidate generation + cheap set Jaccard.
  std::vector<std::vector<std::string>> normalized(records.size());
  std::unordered_map<std::string, std::vector<int32_t>> postings;
  for (int32_t i = 0; i < static_cast<int32_t>(records.size()); ++i) {
    std::unordered_set<std::string> seen;
    for (const std::string& token : records[i]) {
      std::string norm = tokenizer.Normalize(token);
      if (norm.empty() || !seen.insert(norm).second) continue;
      normalized[i].push_back(norm);
      postings[norm].push_back(i);
    }
    std::sort(normalized[i].begin(), normalized[i].end());
  }

  auto set_jaccard = [&](int32_t a, int32_t b) {
    const auto& x = normalized[a];
    const auto& y = normalized[b];
    size_t i = 0, j = 0, common = 0;
    while (i < x.size() && j < y.size()) {
      if (x[i] == y[j]) {
        ++common;
        ++i;
        ++j;
      } else if (x[i] < y[j]) {
        ++i;
      } else {
        ++j;
      }
    }
    const size_t total = x.size() + y.size() - common;
    return total == 0 ? 1.0 : static_cast<double>(common) / total;
  };

  std::vector<int32_t> last_probe(records.size(), -1);
  for (int32_t x = 0; x < static_cast<int32_t>(records.size()); ++x) {
    for (const std::string& token : normalized[x]) {
      for (int32_t y : postings.at(token)) {
        if (y >= x || last_probe[y] == x) continue;
        last_probe[y] = x;
        if (set_jaccard(x, y) < options_.blocking_jaccard) continue;
        ++result.stats.candidates;  // one crowd question
        const bool duplicate = clusters[x] >= 0 && clusters[x] == clusters[y];
        const bool answer = duplicate ? !rng.NextBool(options_.false_negative_rate)
                                      : rng.NextBool(options_.false_positive_rate);
        if (answer) result.pairs.emplace_back(y, x);
      }
    }
  }

  result.stats.results = static_cast<int64_t>(result.pairs.size());
  result.stats.total_seconds = total_timer.ElapsedSeconds();
  return result;
}

}  // namespace kjoin
