#include "baselines/ppjoin.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/logging.h"
#include "common/timer.h"

namespace kjoin {
namespace {

// Multiset expansion: the k-th occurrence of a token becomes a distinct
// key (token, k), so multiset Jaccard reduces to set Jaccard.
std::vector<std::pair<std::string, int32_t>> ExpandMultiset(
    const std::vector<std::string>& record) {
  std::unordered_map<std::string, int32_t> seen;
  std::vector<std::pair<std::string, int32_t>> expanded;
  expanded.reserve(record.size());
  for (const std::string& token : record) expanded.emplace_back(token, seen[token]++);
  return expanded;
}

int64_t MultisetOverlap(const std::vector<std::string>& x, const std::vector<std::string>& y) {
  std::unordered_map<std::string, int32_t> counts;
  for (const std::string& token : x) ++counts[token];
  int64_t overlap = 0;
  for (const std::string& token : y) {
    auto it = counts.find(token);
    if (it != counts.end() && it->second > 0) {
      --it->second;
      ++overlap;
    }
  }
  return overlap;
}

}  // namespace

PpJoin::PpJoin(PpJoinOptions options) : options_(options) {
  KJOIN_CHECK(options.tau > 0.0 && options.tau <= 1.0);
}

double PpJoin::Similarity(const std::vector<std::string>& x,
                          const std::vector<std::string>& y) {
  if (x.empty() && y.empty()) return 1.0;
  const double overlap = static_cast<double>(MultisetOverlap(x, y));
  const double denom = static_cast<double>(x.size()) + y.size() - overlap;
  return denom <= 0.0 ? 1.0 : overlap / denom;
}

JoinResult PpJoin::SelfJoin(const std::vector<std::vector<std::string>>& records) const {
  JoinResult result;
  result.stats.num_objects_left = static_cast<int64_t>(records.size());
  result.stats.num_objects_right = result.stats.num_objects_left;
  WallTimer total_timer;
  const double tau = options_.tau;

  // Intern expanded tokens and count document frequencies.
  WallTimer phase_timer;
  struct PairHash {
    size_t operator()(const std::pair<std::string, int32_t>& key) const {
      return std::hash<std::string>()(key.first) * 1315423911u ^
             static_cast<size_t>(key.second);
    }
  };
  std::unordered_map<std::pair<std::string, int32_t>, int32_t, PairHash> token_ids;
  std::vector<int32_t> df;
  std::vector<std::vector<int32_t>> tokens(records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    for (const auto& key : ExpandMultiset(records[i])) {
      auto [it, inserted] = token_ids.emplace(key, static_cast<int32_t>(token_ids.size()));
      if (inserted) df.push_back(0);
      ++df[it->second];
      tokens[i].push_back(it->second);
    }
  }
  // Global order: df ascending, ties by id; remap ids to ranks.
  std::vector<int32_t> by_rank(df.size());
  for (size_t t = 0; t < df.size(); ++t) by_rank[t] = static_cast<int32_t>(t);
  std::sort(by_rank.begin(), by_rank.end(), [&](int32_t a, int32_t b) {
    if (df[a] != df[b]) return df[a] < df[b];
    return a < b;
  });
  std::vector<int32_t> rank_of(df.size());
  for (size_t r = 0; r < by_rank.size(); ++r) rank_of[by_rank[r]] = static_cast<int32_t>(r);
  for (auto& record : tokens) {
    for (int32_t& t : record) t = rank_of[t];
    std::sort(record.begin(), record.end());
  }

  // Size-ascending processing order (the size filter assumes the indexed
  // record is never longer than the probing one).
  std::vector<int32_t> order(records.size());
  for (size_t i = 0; i < records.size(); ++i) order[i] = static_cast<int32_t>(i);
  std::stable_sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
    return tokens[a].size() < tokens[b].size();
  });
  result.stats.signature_seconds = phase_timer.ElapsedSeconds();

  // token rank -> postings of (record, prefix position).
  std::vector<std::vector<std::pair<int32_t, int32_t>>> index(df.size());
  // Shared-prefix overlap accumulator, reset per probe via stamping.
  std::vector<int64_t> shared(records.size(), 0);
  std::vector<int32_t> stamp(records.size(), -1);
  constexpr int64_t kPruned = -1;

  StopWatch filter_watch, verify_watch;
  for (size_t step = 0; step < order.size(); ++step) {
    const int32_t x = order[step];
    const auto& tx = tokens[x];
    const int32_t sx = static_cast<int32_t>(tx.size());
    if (sx == 0) continue;
    const int32_t prefix = sx - static_cast<int32_t>(std::ceil(tau * sx - 1e-9)) + 1;

    filter_watch.Start();
    std::vector<int32_t> candidates;
    for (int32_t i = 0; i < prefix; ++i) {
      for (const auto& [y, j] : index[tx[i]]) {
        const int32_t sy = static_cast<int32_t>(tokens[y].size());
        if (static_cast<double>(sy) < tau * sx - 1e-9) continue;  // size filter
        if (stamp[y] != static_cast<int32_t>(step)) {
          stamp[y] = static_cast<int32_t>(step);
          shared[y] = 0;
          candidates.push_back(y);
        }
        if (shared[y] == kPruned) continue;
        if (options_.position_filter) {
          // Overlap can still grow by at most 1 + remaining suffix length
          // on either side.
          const double needed = tau / (1.0 + tau) * (sx + sy);
          const int64_t upper = shared[y] + 1 + std::min(sx - i - 1, sy - j - 1);
          if (static_cast<double>(upper) < needed - 1e-9) {
            shared[y] = kPruned;
            continue;
          }
        }
        ++shared[y];
      }
    }
    filter_watch.Stop();

    verify_watch.Start();
    for (int32_t y : candidates) {
      ++result.stats.verify.pairs_verified;
      if (shared[y] == kPruned) {
        ++result.stats.verify.rejected_by_upper_bound;
        continue;
      }
      // Exact overlap via sorted-merge count.
      const auto& ty = tokens[y];
      size_t a = 0, b = 0;
      int64_t overlap = 0;
      while (a < tx.size() && b < ty.size()) {
        if (tx[a] == ty[b]) {
          ++overlap;
          ++a;
          ++b;
        } else if (tx[a] < ty[b]) {
          ++a;
        } else {
          ++b;
        }
      }
      const double needed = tau / (1.0 + tau) * (sx + static_cast<double>(ty.size()));
      if (static_cast<double>(overlap) >= needed - 1e-9) {
        result.pairs.emplace_back(std::min(x, y), std::max(x, y));
      }
    }
    result.stats.candidates += static_cast<int64_t>(candidates.size());
    verify_watch.Stop();

    filter_watch.Start();
    for (int32_t i = 0; i < prefix; ++i) index[tx[i]].emplace_back(x, i);
    filter_watch.Stop();
  }

  result.stats.filter_seconds = filter_watch.TotalSeconds();
  result.stats.verify_seconds = verify_watch.TotalSeconds();
  result.stats.results = static_cast<int64_t>(result.pairs.size());
  result.stats.verify.results = result.stats.results;
  result.stats.total_seconds = total_timer.ElapsedSeconds();
  return result;
}

}  // namespace kjoin
