#ifndef KJOIN_DATA_BENCHMARK_SUITE_H_
#define KJOIN_DATA_BENCHMARK_SUITE_H_

// The four evaluation datasets of the paper (§7.1, Table 3), rebuilt
// synthetically with ground truth, plus helpers to turn them into Object
// collections. See DESIGN.md §3 for the substitution rationale.
//
//  Pub   — 1879 records, ~6 tokens, 2-level publication hierarchy;
//          errors dominated by typos and abbreviations (§7.2).
//  Res   — 864 records, 4 tokens, 4-level category hierarchy; errors
//          dominated by synonyms and sibling categories.
//  POI   — shape of Table 3's POI crawl: ~11 tokens, element depth ~4,
//          over a Table 2-shaped hierarchy.
//  Tweet — ~8 tokens, element depth ~5, noisier free text.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/object.h"
#include "data/dataset.h"
#include "data/generator.h"
#include "hierarchy/hierarchy.h"

namespace kjoin {

struct BenchmarkData {
  Hierarchy hierarchy;
  Dataset dataset;
};

BenchmarkData MakePubBenchmark(uint64_t seed = 101);
BenchmarkData MakeResBenchmark(uint64_t seed = 102);
BenchmarkData MakePoiBenchmark(int64_t num_records, uint64_t seed = 103);
BenchmarkData MakeTweetBenchmark(int64_t num_records, uint64_t seed = 104);

// Objects plus the matcher/builder that own their shared state.
struct PreparedObjects {
  std::unique_ptr<EntityMatcher> matcher;
  std::unique_ptr<ObjectBuilder> builder;
  std::vector<Object> objects;
};

// Registers the dataset's synonyms with a fresh matcher and builds every
// record. multi_mapping=true produces K-Join+ objects (synonyms + typo
// tolerance), false the single-mapping K-Join objects.
PreparedObjects BuildObjects(const Hierarchy& hierarchy, const Dataset& dataset,
                             bool multi_mapping, double min_phi = 0.6);

}  // namespace kjoin

#endif  // KJOIN_DATA_BENCHMARK_SUITE_H_
