#ifndef KJOIN_DATA_QUALITY_H_
#define KJOIN_DATA_QUALITY_H_

// Result-quality metrics against ground truth (paper §7.2).

#include <cstdint>
#include <utility>
#include <vector>

namespace kjoin {

struct QualityReport {
  int64_t reported = 0;        // pairs the algorithm returned
  int64_t truth = 0;           // ground-truth duplicate pairs
  int64_t true_positives = 0;
  double precision = 0.0;      // TP / reported (1 when nothing reported)
  double recall = 0.0;         // TP / truth   (1 when no truth pairs)
  double f_measure = 0.0;      // harmonic mean
};

// Pairs are unordered; (a, b) and (b, a) are identical. Inputs need not be
// sorted or deduplicated.
QualityReport EvaluateQuality(const std::vector<std::pair<int32_t, int32_t>>& reported,
                              const std::vector<std::pair<int32_t, int32_t>>& truth);

}  // namespace kjoin

#endif  // KJOIN_DATA_QUALITY_H_
