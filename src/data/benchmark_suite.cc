#include "data/benchmark_suite.h"

#include "hierarchy/hierarchy_generator.h"

namespace kjoin {

BenchmarkData MakePubBenchmark(uint64_t seed) {
  // Root -> ~12 research areas -> ~140 venues (the "paper, research area,
  // conference" 3-level hierarchy of §7.2).
  HierarchyGenParams tree_params;
  tree_params.num_nodes = 150;
  tree_params.height = 2;
  tree_params.avg_fanout = 12.0;
  tree_params.max_fanout = 30;
  tree_params.seed = seed;
  BenchmarkData data{GenerateHierarchy(tree_params), {}};

  RecordGenParams params;
  params.num_records = 1879;
  params.avg_elements = 6;
  params.min_elements = 4;
  params.max_elements = 16;
  params.min_depth = 2;  // venues
  params.max_depth = 2;
  params.unmatched_token_rate = 0.60;  // titles and authors are free text
  params.duplicate_fraction = 0.35;
  // §7.2: Pub's inconsistencies come from typos and abbreviations, and
  // they hit the venue names: that is what K-Join+'s approximate mapping
  // and synonym table bridge while exact token matching cannot.
  params.typo_rate = 0.45;
  params.free_typo_rate = 0.03;
  params.synonym_rate = 0.45;          // abbreviations, registered as aliases
  params.sibling_swap_rate = 0.03;
  params.drop_rate = 0.06;
  params.add_rate = 0.05;
  params.synonym_vocabulary_fraction = 0.85;
  params.seed = seed + 1;
  data.dataset = DatasetGenerator(data.hierarchy, params).Generate("Pub");
  return data;
}

BenchmarkData MakeResBenchmark(uint64_t seed) {
  // Root -> cuisine groups -> cuisines -> sub-cuisines / neighbourhoods.
  HierarchyGenParams tree_params;
  tree_params.num_nodes = 500;
  tree_params.height = 4;
  tree_params.avg_fanout = 5.0;
  tree_params.max_fanout = 20;
  tree_params.seed = seed;
  BenchmarkData data{GenerateHierarchy(tree_params), {}};

  RecordGenParams params;
  params.num_records = 864;
  params.avg_elements = 4;
  params.min_elements = 4;
  params.max_elements = 4;  // Table 3: Res records have exactly 4 tokens
  params.min_depth = 2;
  params.max_depth = 4;
  params.unmatched_token_rate = 0.25;  // restaurant names
  params.duplicate_fraction = 0.40;
  // §7.2: Res's errors come from synonyms and the knowledge hierarchy
  // ("American food" vs "Californian food" = sibling categories).
  params.typo_rate = 0.05;
  params.synonym_rate = 0.25;
  params.sibling_swap_rate = 0.22;
  params.drop_rate = 0.0;
  params.add_rate = 0.0;
  params.synonym_vocabulary_fraction = 0.5;
  params.seed = seed + 1;
  data.dataset = DatasetGenerator(data.hierarchy, params).Generate("Res");
  return data;
}

BenchmarkData MakePoiBenchmark(int64_t num_records, uint64_t seed) {
  HierarchyGenParams tree_params;  // Table 2 defaults
  tree_params.seed = seed;
  BenchmarkData data{GenerateHierarchy(tree_params), {}};
  data.dataset =
      DatasetGenerator(data.hierarchy, PoiParams(num_records, seed + 1)).Generate("POI");
  return data;
}

BenchmarkData MakeTweetBenchmark(int64_t num_records, uint64_t seed) {
  HierarchyGenParams tree_params;  // Table 2 defaults
  tree_params.seed = seed;
  BenchmarkData data{GenerateHierarchy(tree_params), {}};
  data.dataset =
      DatasetGenerator(data.hierarchy, TweetParams(num_records, seed + 1)).Generate("Tweet");
  return data;
}

PreparedObjects BuildObjects(const Hierarchy& hierarchy, const Dataset& dataset,
                             bool multi_mapping, double min_phi) {
  PreparedObjects prepared;
  EntityMatcherOptions options;
  options.min_phi = min_phi;
  options.enable_approximate = multi_mapping;
  prepared.matcher = std::make_unique<EntityMatcher>(hierarchy, options);
  // Synonym aliases are a K-Join+ capability (§6.4); the paper's plain
  // K-Join maps each element to at most one node by exact label.
  if (multi_mapping) {
    for (const auto& [alias, label] : dataset.synonyms) {
      prepared.matcher->AddSynonym(alias, label);
    }
  }
  prepared.builder = std::make_unique<ObjectBuilder>(*prepared.matcher, multi_mapping);
  prepared.objects.reserve(dataset.records.size());
  for (const Record& record : dataset.records) {
    prepared.objects.push_back(prepared.builder->Build(record.id, record.tokens));
  }
  return prepared;
}

}  // namespace kjoin
