#ifndef KJOIN_DATA_DATASET_H_
#define KJOIN_DATA_DATASET_H_

// Datasets with ground truth.
//
// A Record is a raw tokenized entry plus the id of its duplicate cluster
// (records in one cluster describe the same real-world entity). Datasets
// also carry the synonym table their generator created, which callers
// register with the EntityMatcher before building objects.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "text/entity_matcher.h"

namespace kjoin {

struct Record {
  int32_t id = -1;
  // Ground-truth entity cluster; records sharing a cluster are duplicates.
  // -1 = singleton with no duplicates.
  int32_t cluster = -1;
  std::vector<std::string> tokens;
};

struct Dataset {
  std::string name;
  std::vector<Record> records;
  // (alias, node label): aliases to register via EntityMatcher::AddSynonym.
  std::vector<std::pair<std::string, std::string>> synonyms;
};

// Shape statistics in the form of the paper's Table 3.
struct DatasetStats {
  int64_t size = 0;
  double avg_len = 0.0;
  int max_len = 0;
  int min_len = 0;
  // Average hierarchy depth of tokens that match an entity (via `matcher`).
  double avg_depth = 0.0;
  int64_t num_truth_pairs = 0;
};

DatasetStats ComputeDatasetStats(const Dataset& dataset, const EntityMatcher& matcher);

// All ground-truth duplicate pairs (i < j, indices into records).
std::vector<std::pair<int32_t, int32_t>> GroundTruthPairs(const Dataset& dataset);

}  // namespace kjoin

#endif  // KJOIN_DATA_DATASET_H_
