#include "data/generator.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace kjoin {
namespace {

// Small pronounceable word for free-text tokens and synonym aliases.
std::string RandomWord(Rng& rng, int syllables) {
  static constexpr const char* kOnsets[] = {"b", "d", "f", "g", "k", "l", "m",
                                            "n", "p", "r", "s", "t", "v", "z"};
  static constexpr const char* kVowels[] = {"a", "e", "i", "o", "u"};
  std::string word;
  for (int i = 0; i < syllables; ++i) {
    word += kOnsets[rng.NextUint64(std::size(kOnsets))];
    word += kVowels[rng.NextUint64(std::size(kVowels))];
  }
  return word;
}

// One random character edit (substitute / delete / insert).
std::string ApplyTypo(const std::string& token, Rng& rng) {
  if (token.empty()) return token;
  std::string out = token;
  const char letter = static_cast<char>('a' + rng.NextUint64(26));
  switch (rng.NextUint64(3)) {
    case 0:  // substitute
      out[rng.NextUint64(out.size())] = letter;
      break;
    case 1:  // delete (keep at least one character)
      if (out.size() > 1) out.erase(rng.NextUint64(out.size()), 1);
      break;
    default:  // insert
      out.insert(out.begin() + rng.NextUint64(out.size() + 1), letter);
      break;
  }
  return out;
}

}  // namespace

DatasetGenerator::DatasetGenerator(const Hierarchy& hierarchy, RecordGenParams params)
    : hierarchy_(&hierarchy), params_(params) {
  KJOIN_CHECK_GE(params.min_elements, 1);
  KJOIN_CHECK_LE(params.min_elements, params.avg_elements);
  KJOIN_CHECK_LE(params.avg_elements, params.max_elements);

  const int lo = std::max(1, params.min_depth);
  const int hi = std::min(hierarchy.height(), params.max_depth);
  KJOIN_CHECK_LE(lo, hi) << "no hierarchy nodes in the requested depth range";
  std::vector<std::vector<NodeId>> buckets(hi + 1);
  for (NodeId v = 1; v < hierarchy.num_nodes(); ++v) {
    const int d = hierarchy.depth(v);
    if (d >= lo && d <= hi) buckets[d].push_back(v);
  }
  for (auto& bucket : buckets) {
    if (!bucket.empty()) depth_buckets_.push_back(std::move(bucket));
  }
  KJOIN_CHECK(!depth_buckets_.empty());

  // Synonym aliases and the free-text vocabulary are derived from the
  // seed so that a (hierarchy, params) pair is fully reproducible.
  Rng rng(params.seed ^ 0xabcdef1234567890ULL);
  alias_of_node_.assign(hierarchy.num_nodes(), "");
  for (const auto& bucket : depth_buckets_) {
    for (NodeId node : bucket) {
      if (rng.NextBool(params.synonym_vocabulary_fraction)) {
        alias_of_node_[node] = RandomWord(rng, 4);
      }
    }
  }
  free_vocabulary_.reserve(512);
  for (int i = 0; i < 512; ++i) free_vocabulary_.push_back(RandomWord(rng, 2));

  // Hierarchical (path-skewed) popularity: the i-th child of a node gets
  // a 1/(i+1)^s share of its parent's mass, so a few top-level categories
  // dominate and *deep descendants of popular categories stay popular*.
  // This mirrors real POI data, where hub categories ("CA", "Food") cover
  // large record fractions — and it is what separates coarse node
  // signatures from fine deep signatures (paper Fig. 9).
  std::vector<double> node_weight(hierarchy.num_nodes(), 0.0);
  node_weight[hierarchy.root()] = 1.0;
  for (NodeId v = 0; v < hierarchy.num_nodes(); ++v) {
    const auto& kids = hierarchy.children(v);
    if (kids.empty()) continue;
    double z = 0.0;
    for (size_t i = 0; i < kids.size(); ++i) {
      z += params_.zipf_exponent <= 0.0
               ? 1.0
               : 1.0 / std::pow(static_cast<double>(i + 1), params_.zipf_exponent);
    }
    for (size_t i = 0; i < kids.size(); ++i) {
      const double share = params_.zipf_exponent <= 0.0
                               ? 1.0
                               : 1.0 / std::pow(static_cast<double>(i + 1),
                                                params_.zipf_exponent);
      node_weight[kids[i]] = node_weight[v] * share / z;
    }
  }
  bucket_cumulative_.resize(depth_buckets_.size());
  for (size_t b = 0; b < depth_buckets_.size(); ++b) {
    double total = 0.0;
    bucket_cumulative_[b].reserve(depth_buckets_[b].size());
    for (NodeId node : depth_buckets_[b]) {
      total += node_weight[node];
      bucket_cumulative_[b].push_back(total);
    }
  }
}

NodeId DatasetGenerator::SampleNode(Rng& rng) const {
  const size_t b = rng.NextUint64(depth_buckets_.size());
  const auto& bucket = depth_buckets_[b];
  const auto& cumulative = bucket_cumulative_[b];
  const double r = rng.NextDouble() * cumulative.back();
  const size_t index = static_cast<size_t>(
      std::lower_bound(cumulative.begin(), cumulative.end(), r) - cumulative.begin());
  return bucket[std::min(index, bucket.size() - 1)];
}

NodeId DatasetGenerator::SampleSibling(NodeId node, Rng& rng) const {
  const NodeId parent = hierarchy_->parent(node);
  if (parent == kInvalidNode) return node;
  const auto& siblings = hierarchy_->children(parent);
  if (siblings.size() > 1) {
    for (int attempt = 0; attempt < 8; ++attempt) {
      const NodeId pick = siblings[rng.NextUint64(siblings.size())];
      if (pick != node) return pick;
    }
  }
  // Fall back to a cousin: a child of a sibling of the parent, at the
  // same depth (LCA = grandparent).
  const NodeId grandparent = hierarchy_->parent(parent);
  if (grandparent == kInvalidNode) return node;
  const auto& uncles = hierarchy_->children(grandparent);
  for (int attempt = 0; attempt < 8; ++attempt) {
    const NodeId uncle = uncles[rng.NextUint64(uncles.size())];
    if (uncle == parent || hierarchy_->children(uncle).empty()) continue;
    const auto& cousins = hierarchy_->children(uncle);
    return cousins[rng.NextUint64(cousins.size())];
  }
  return node;
}

std::string DatasetGenerator::RandomFreeToken(Rng& rng) const {
  return free_vocabulary_[rng.NextUint64(free_vocabulary_.size())];
}

std::vector<DatasetGenerator::BaseToken> DatasetGenerator::MakeBase(Rng& rng) const {
  // Uniform size over [min, 2·avg − min] (clamped) averages at `avg`.
  const int hi = std::min(params_.max_elements, 2 * params_.avg_elements - params_.min_elements);
  const int size = static_cast<int>(rng.NextInt(params_.min_elements, std::max(params_.min_elements, hi)));
  std::vector<BaseToken> base;
  base.reserve(size);
  for (int i = 0; i < size; ++i) {
    if (rng.NextBool(params_.unmatched_token_rate)) {
      base.push_back({kInvalidNode, RandomFreeToken(rng)});
    } else {
      const NodeId node = SampleNode(rng);
      base.push_back({node, hierarchy_->label(node)});
    }
  }
  return base;
}

std::vector<DatasetGenerator::BaseToken> DatasetGenerator::MakeConfusable(
    const std::vector<BaseToken>& base, Rng& rng) const {
  std::vector<BaseToken> out;
  out.reserve(base.size());
  for (const BaseToken& token : base) {
    if (rng.NextBool(params_.confusable_keep)) {
      out.push_back(token);
    } else if (rng.NextBool(params_.unmatched_token_rate)) {
      out.push_back({kInvalidNode, RandomFreeToken(rng)});
    } else {
      const NodeId node = SampleNode(rng);
      out.push_back({node, hierarchy_->label(node)});
    }
  }
  if (out.empty()) out = MakeBase(rng);
  return out;
}

std::vector<std::string> DatasetGenerator::Render(const std::vector<BaseToken>& base) const {
  std::vector<std::string> tokens;
  tokens.reserve(base.size());
  for (const BaseToken& token : base) tokens.push_back(token.text);
  return tokens;
}

std::vector<std::string> DatasetGenerator::Perturb(const std::vector<BaseToken>& base,
                                                   Rng& rng) const {
  std::vector<std::string> tokens;
  tokens.reserve(base.size() + 1);
  for (const BaseToken& token : base) {
    if (rng.NextBool(params_.drop_rate) && base.size() > 1) continue;
    const bool entity_token = token.node != kInvalidNode;
    BaseToken current = token;
    if (entity_token && rng.NextBool(params_.sibling_swap_rate)) {
      current.node = SampleSibling(current.node, rng);
      current.text = hierarchy_->label(current.node);
    }
    if (current.node != kInvalidNode && rng.NextBool(params_.synonym_rate) &&
        !alias_of_node_[current.node].empty()) {
      current.text = alias_of_node_[current.node];
      current.node = kInvalidNode;  // aliases are plain text now
    }
    const double typo_rate =
        entity_token ? params_.typo_rate
                     : (params_.free_typo_rate < 0.0 ? params_.typo_rate
                                                     : params_.free_typo_rate);
    if (rng.NextBool(typo_rate)) {
      current.text = ApplyTypo(current.text, rng);
    }
    tokens.push_back(current.text);
  }
  if (tokens.empty()) tokens.push_back(base.front().text);
  if (rng.NextBool(params_.add_rate)) {
    const NodeId extra = SampleNode(rng);
    tokens.push_back(hierarchy_->label(extra));
  }
  return tokens;
}

Dataset DatasetGenerator::Generate(std::string name) {
  Dataset dataset;
  dataset.name = std::move(name);
  dataset.records.reserve(params_.num_records);
  for (NodeId v = 0; v < hierarchy_->num_nodes(); ++v) {
    if (!alias_of_node_[v].empty()) {
      dataset.synonyms.emplace_back(alias_of_node_[v], hierarchy_->label(v));
    }
  }

  Rng rng(params_.seed);
  int32_t next_cluster = 0;
  std::vector<BaseToken> previous_base;
  while (static_cast<int64_t>(dataset.records.size()) < params_.num_records) {
    const std::vector<BaseToken> base =
        (!previous_base.empty() && rng.NextBool(params_.confusable_fraction))
            ? MakeConfusable(previous_base, rng)
            : MakeBase(rng);
    previous_base = base;
    int duplicates = 0;
    if (rng.NextBool(params_.duplicate_fraction)) {
      duplicates = static_cast<int>(rng.NextInt(1, params_.max_duplicates_per_record));
    }
    const int32_t cluster = duplicates > 0 ? next_cluster++ : -1;

    Record record;
    record.id = static_cast<int32_t>(dataset.records.size());
    record.cluster = cluster;
    record.tokens = Render(base);
    dataset.records.push_back(std::move(record));

    for (int d = 0; d < duplicates; ++d) {
      if (static_cast<int64_t>(dataset.records.size()) >= params_.num_records) break;
      Record dup;
      dup.id = static_cast<int32_t>(dataset.records.size());
      dup.cluster = cluster;
      dup.tokens = Perturb(base, rng);
      dataset.records.push_back(std::move(dup));
    }
  }
  return dataset;
}

RecordGenParams PoiParams(int64_t num_records, uint64_t seed) {
  RecordGenParams params;
  params.num_records = num_records;
  params.avg_elements = 11;
  params.min_elements = 2;
  params.max_elements = 21;
  params.min_depth = 2;
  params.max_depth = 6;  // avg element depth ~4 (Table 3)
  params.zipf_exponent = 1.6;  // strong hub-category skew (see header)
  params.unmatched_token_rate = 0.08;
  params.seed = seed;
  return params;
}

RecordGenParams TweetParams(int64_t num_records, uint64_t seed) {
  RecordGenParams params;
  params.num_records = num_records;
  params.avg_elements = 8;
  params.min_elements = 2;
  params.max_elements = 23;
  params.min_depth = 4;
  params.max_depth = 6;  // avg element depth ~5 (Table 3)
  params.zipf_exponent = 1.6;
  params.unmatched_token_rate = 0.15;
  params.typo_rate = 0.15;
  params.seed = seed;
  return params;
}

}  // namespace kjoin
