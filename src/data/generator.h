#ifndef KJOIN_DATA_GENERATOR_H_
#define KJOIN_DATA_GENERATOR_H_

// Synthetic dataset generation with planted ground truth.
//
// The paper's POI and Tweet crawls are not public; these generators
// reproduce their published shape (Table 3) and, crucially, their error
// structure: duplicate records differ through the channels §7.2 names —
// sub-category substitutions that only the knowledge hierarchy can bridge
// (sibling swaps), typos, synonyms/abbreviations, and token noise. See
// DESIGN.md §3.

#include <cstdint>

#include "common/rng.h"
#include "data/dataset.h"
#include "hierarchy/hierarchy.h"

namespace kjoin {

struct RecordGenParams {
  int64_t num_records = 100000;

  // --- record shape ----------------------------------------------------
  int avg_elements = 11;
  int min_elements = 2;
  int max_elements = 21;
  // Element depths are sampled uniformly from [min_depth, max_depth]
  // (clamped to the hierarchy height); a node of that depth is then drawn
  // Zipf-skewed. POI ~ [2, 6] (avg depth 4), Tweet ~ [4, 6] (avg depth 5).
  int min_depth = 2;
  int max_depth = 6;
  // Popularity skew of elements within a depth (1/rank^s). Real POI data
  // has hub categories ("CA", "Food") shared by large record fractions —
  // this is what makes coarse node signatures collide massively (the
  // paper's Fig. 9 Node-vs-Deep gap). 0 = uniform.
  double zipf_exponent = 1.0;
  // Probability that a token is free text (matches no entity).
  double unmatched_token_rate = 0.1;

  // --- duplicate structure ---------------------------------------------
  // Probability that a freshly generated base record spawns duplicates.
  double duplicate_fraction = 0.3;
  int max_duplicates_per_record = 3;

  // --- per-token perturbation rates for duplicates ----------------------
  double sibling_swap_rate = 0.15;  // knowledge-hierarchy errors
  double typo_rate = 0.10;          // single character edits (entity tokens)
  // Typo rate for free-text tokens; defaults to typo_rate when negative.
  // Pub concentrates typos on venue names (entity tokens), which is what
  // K-Join+'s approximate mapping bridges.
  double free_typo_rate = -1.0;
  double synonym_rate = 0.10;       // replace by a registered alias
  double drop_rate = 0.05;          // delete the token
  double add_rate = 0.05;           // append a random extra token

  // Fraction of eligible nodes that get a synonym alias.
  double synonym_vocabulary_fraction = 0.2;

  // --- confusable records ------------------------------------------------
  // Probability that a new base record is derived from an earlier one
  // (sharing `confusable_keep` of its tokens) without being a duplicate.
  // These near-misses are what keeps precision below 1 on real data.
  double confusable_fraction = 0.15;
  double confusable_keep = 0.6;

  uint64_t seed = 7;
};

class DatasetGenerator {
 public:
  // The hierarchy must outlive the generator (the dataset only holds
  // strings, so it is independent afterwards).
  DatasetGenerator(const Hierarchy& hierarchy, RecordGenParams params);

  Dataset Generate(std::string name);

 private:
  // A base token remembers the node it came from so perturbation channels
  // (sibling swap, synonym) can act on the hierarchy; free-text tokens
  // carry kInvalidNode.
  struct BaseToken {
    NodeId node = kInvalidNode;
    std::string text;
  };

  std::vector<BaseToken> MakeBase(Rng& rng) const;
  // A non-duplicate neighbour of `base`: keeps ~confusable_keep of its
  // tokens, resamples the rest.
  std::vector<BaseToken> MakeConfusable(const std::vector<BaseToken>& base, Rng& rng) const;
  std::vector<std::string> Render(const std::vector<BaseToken>& base) const;
  std::vector<std::string> Perturb(const std::vector<BaseToken>& base, Rng& rng) const;
  NodeId SampleNode(Rng& rng) const;
  NodeId SampleSibling(NodeId node, Rng& rng) const;
  std::string RandomFreeToken(Rng& rng) const;

  const Hierarchy* hierarchy_;
  RecordGenParams params_;
  // Depth buckets within [min_depth, max_depth] that are non-empty.
  std::vector<std::vector<NodeId>> depth_buckets_;
  // Per-bucket cumulative Zipf weights for O(log n) skewed sampling.
  std::vector<std::vector<double>> bucket_cumulative_;
  // node -> alias ("" when none); filled at construction.
  std::vector<std::string> alias_of_node_;
  std::vector<std::string> free_vocabulary_;
};

// Parameter presets reproducing Table 3 shapes.
RecordGenParams PoiParams(int64_t num_records, uint64_t seed = 11);
RecordGenParams TweetParams(int64_t num_records, uint64_t seed = 13);

}  // namespace kjoin

#endif  // KJOIN_DATA_GENERATOR_H_
