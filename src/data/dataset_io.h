#ifndef KJOIN_DATA_DATASET_IO_H_
#define KJOIN_DATA_DATASET_IO_H_

// Plain-text serialization of datasets, so users can bring real record
// collections (and persist generated ones for external analysis).
//
// Record line:   R<tab><cluster><tab><token>[<tab><token>...]
// Synonym line:  S<tab><alias><tab><canonical-label>
// '#' comments and blank lines are ignored. Record ids are assigned in
// file order; cluster is an integer (-1 = no duplicates).

#include <optional>
#include <string>
#include <string_view>

#include "data/dataset.h"

namespace kjoin {

std::string SerializeDataset(const Dataset& dataset);

// Returns nullopt (and logs the offending line) on malformed input.
std::optional<Dataset> ParseDataset(std::string_view text, std::string name = "dataset");

bool WriteDatasetFile(const Dataset& dataset, const std::string& path);
std::optional<Dataset> ReadDatasetFile(const std::string& path);

}  // namespace kjoin

#endif  // KJOIN_DATA_DATASET_IO_H_
