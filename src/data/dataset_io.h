#ifndef KJOIN_DATA_DATASET_IO_H_
#define KJOIN_DATA_DATASET_IO_H_

// Plain-text serialization of datasets, so users can bring real record
// collections (and persist generated ones for external analysis).
//
// Record line:   R<tab><cluster><tab><token>[<tab><token>...]
// Synonym line:  S<tab><alias><tab><canonical-label>
// '#' comments and blank lines are ignored. Record ids are assigned in
// file order; cluster is an integer (-1 = no duplicates).
//
// The parsers treat their input as untrusted: malformed text is reported
// as a Status (kInvalidArgument with "<source>:<line>: ..." context,
// kNotFound for missing files, kDataLoss for failed reads) rather than
// terminating the process. See docs/robustness.md.

#include <string>
#include <string_view>

#include "common/status.h"
#include "data/dataset.h"

namespace kjoin {

std::string SerializeDataset(const Dataset& dataset);

// Parses the text format; `name` doubles as the dataset name and the
// source label in error messages (pass the file path when parsing file
// contents). Fails with kInvalidArgument on unknown line types, bad
// arity, non-integer clusters, or non-UTF-8 tokens.
StatusOr<Dataset> ParseDataset(std::string_view text, std::string name = "dataset");

Status WriteDatasetFile(const Dataset& dataset, const std::string& path);
StatusOr<Dataset> ReadDatasetFile(const std::string& path);

}  // namespace kjoin

#endif  // KJOIN_DATA_DATASET_IO_H_
