#include "data/dataset.h"

#include <algorithm>
#include <unordered_map>

namespace kjoin {

DatasetStats ComputeDatasetStats(const Dataset& dataset, const EntityMatcher& matcher) {
  DatasetStats stats;
  stats.size = static_cast<int64_t>(dataset.records.size());
  if (dataset.records.empty()) return stats;

  int64_t token_total = 0;
  int64_t depth_total = 0;
  int64_t matched = 0;
  stats.min_len = static_cast<int>(dataset.records[0].tokens.size());
  for (const Record& record : dataset.records) {
    const int len = static_cast<int>(record.tokens.size());
    token_total += len;
    stats.max_len = std::max(stats.max_len, len);
    stats.min_len = std::min(stats.min_len, len);
    for (const std::string& token : record.tokens) {
      if (auto match = matcher.MatchOne(token); match.has_value()) {
        depth_total += matcher.hierarchy().depth(match->node);
        ++matched;
      }
    }
  }
  stats.avg_len = static_cast<double>(token_total) / stats.size;
  stats.avg_depth = matched > 0 ? static_cast<double>(depth_total) / matched : 0.0;
  stats.num_truth_pairs = static_cast<int64_t>(GroundTruthPairs(dataset).size());
  return stats;
}

std::vector<std::pair<int32_t, int32_t>> GroundTruthPairs(const Dataset& dataset) {
  std::unordered_map<int32_t, std::vector<int32_t>> clusters;
  for (int32_t i = 0; i < static_cast<int32_t>(dataset.records.size()); ++i) {
    const int32_t cluster = dataset.records[i].cluster;
    if (cluster >= 0) clusters[cluster].push_back(i);
  }
  std::vector<std::pair<int32_t, int32_t>> pairs;
  for (const auto& [cluster, members] : clusters) {
    for (size_t a = 0; a < members.size(); ++a) {
      for (size_t b = a + 1; b < members.size(); ++b) {
        pairs.emplace_back(members[a], members[b]);
      }
    }
  }
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

}  // namespace kjoin
