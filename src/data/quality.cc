#include "data/quality.h"

#include <algorithm>
#include <unordered_set>

namespace kjoin {
namespace {

uint64_t PairKey(int32_t a, int32_t b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
         static_cast<uint32_t>(b);
}

std::unordered_set<uint64_t> ToKeySet(const std::vector<std::pair<int32_t, int32_t>>& pairs) {
  std::unordered_set<uint64_t> keys;
  keys.reserve(pairs.size() * 2);
  for (const auto& [a, b] : pairs) {
    if (a == b) continue;
    keys.insert(PairKey(a, b));
  }
  return keys;
}

}  // namespace

QualityReport EvaluateQuality(const std::vector<std::pair<int32_t, int32_t>>& reported,
                              const std::vector<std::pair<int32_t, int32_t>>& truth) {
  const std::unordered_set<uint64_t> reported_keys = ToKeySet(reported);
  const std::unordered_set<uint64_t> truth_keys = ToKeySet(truth);

  QualityReport report;
  report.reported = static_cast<int64_t>(reported_keys.size());
  report.truth = static_cast<int64_t>(truth_keys.size());
  for (uint64_t key : reported_keys) {
    if (truth_keys.contains(key)) ++report.true_positives;
  }
  report.precision = report.reported == 0
                         ? 1.0
                         : static_cast<double>(report.true_positives) / report.reported;
  report.recall =
      report.truth == 0 ? 1.0 : static_cast<double>(report.true_positives) / report.truth;
  report.f_measure = (report.precision + report.recall) == 0.0
                         ? 0.0
                         : 2.0 * report.precision * report.recall /
                               (report.precision + report.recall);
  return report;
}

}  // namespace kjoin
