#include "data/dataset_io.h"

#include <cerrno>
#include <climits>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/fault_injection.h"
#include "common/string_util.h"

namespace kjoin {
namespace {

Status ParseError(std::string_view source_name, int line_number, std::string message) {
  return InvalidArgumentError(std::string(source_name) + ":" +
                              std::to_string(line_number) + ": " + std::move(message));
}

}  // namespace

std::string SerializeDataset(const Dataset& dataset) {
  std::ostringstream os;
  os << "# kjoin dataset: " << dataset.name << ", " << dataset.records.size()
     << " records, " << dataset.synonyms.size() << " synonyms\n";
  for (const auto& [alias, label] : dataset.synonyms) {
    os << "S\t" << alias << "\t" << label << "\n";
  }
  for (const Record& record : dataset.records) {
    os << "R\t" << record.cluster;
    for (const std::string& token : record.tokens) os << "\t" << token;
    os << "\n";
  }
  return os.str();
}

StatusOr<Dataset> ParseDataset(std::string_view text, std::string name) {
  Dataset dataset;
  dataset.name = std::move(name);
  int line_number = 0;
  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_number;
    const std::string_view line = StripAsciiWhitespace(raw_line);
    if (line.empty() || line[0] == '#') continue;
    const std::vector<std::string> fields = Split(line, '\t');
    if (fields[0] == "S") {
      if (fields.size() != 3) {
        return ParseError(dataset.name, line_number,
                          "synonym lines need 3 fields, got " +
                              std::to_string(fields.size()));
      }
      if (!IsValidUtf8(fields[1]) || !IsValidUtf8(fields[2])) {
        return ParseError(dataset.name, line_number, "synonym is not valid UTF-8");
      }
      dataset.synonyms.emplace_back(fields[1], fields[2]);
      continue;
    }
    if (fields[0] == "R") {
      if (fields.size() < 3) {
        return ParseError(dataset.name, line_number,
                          "record lines need a cluster and >= 1 token");
      }
      char* end = nullptr;
      errno = 0;
      const long cluster = std::strtol(fields[1].c_str(), &end, 10);
      if (end == fields[1].c_str() || *end != '\0' || errno == ERANGE ||
          cluster > INT32_MAX || cluster < INT32_MIN) {
        return ParseError(dataset.name, line_number, "bad cluster '" + fields[1] + "'");
      }
      Record record;
      record.id = static_cast<int32_t>(dataset.records.size());
      record.cluster = static_cast<int32_t>(cluster);
      for (size_t k = 2; k < fields.size(); ++k) {
        if (!IsValidUtf8(fields[k])) {
          return ParseError(dataset.name, line_number,
                            "token " + std::to_string(k - 2) + " is not valid UTF-8");
        }
      }
      record.tokens.assign(fields.begin() + 2, fields.end());
      dataset.records.push_back(std::move(record));
      continue;
    }
    return ParseError(dataset.name, line_number,
                      "unknown line type '" + fields[0] + "'");
  }
  return dataset;
}

Status WriteDatasetFile(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return NotFoundError("cannot open " + path + " for writing");
  }
  out << SerializeDataset(dataset);
  out.flush();
  if (!out || KJOIN_FAULT_POINT("dataset_io/write_fail")) {
    return DataLossError("write failed for " + path);
  }
  return OkStatus();
}

StatusOr<Dataset> ReadDatasetFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in || KJOIN_FAULT_POINT("dataset_io/open_fail")) {
    return NotFoundError("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad() || KJOIN_FAULT_POINT("dataset_io/short_read")) {
    return DataLossError("read failed for " + path);
  }
  return ParseDataset(buffer.str(), path);
}

}  // namespace kjoin
