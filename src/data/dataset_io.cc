#include "data/dataset_io.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"

namespace kjoin {

std::string SerializeDataset(const Dataset& dataset) {
  std::ostringstream os;
  os << "# kjoin dataset: " << dataset.name << ", " << dataset.records.size()
     << " records, " << dataset.synonyms.size() << " synonyms\n";
  for (const auto& [alias, label] : dataset.synonyms) {
    os << "S\t" << alias << "\t" << label << "\n";
  }
  for (const Record& record : dataset.records) {
    os << "R\t" << record.cluster;
    for (const std::string& token : record.tokens) os << "\t" << token;
    os << "\n";
  }
  return os.str();
}

std::optional<Dataset> ParseDataset(std::string_view text, std::string name) {
  Dataset dataset;
  dataset.name = std::move(name);
  int line_number = 0;
  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_number;
    const std::string_view line = StripAsciiWhitespace(raw_line);
    if (line.empty() || line[0] == '#') continue;
    const std::vector<std::string> fields = Split(line, '\t');
    if (fields[0] == "S") {
      if (fields.size() != 3) {
        KJOIN_LOG(WARNING) << "dataset line " << line_number
                           << ": synonym lines need 3 fields";
        return std::nullopt;
      }
      dataset.synonyms.emplace_back(fields[1], fields[2]);
      continue;
    }
    if (fields[0] == "R") {
      if (fields.size() < 3) {
        KJOIN_LOG(WARNING) << "dataset line " << line_number
                           << ": record lines need a cluster and >= 1 token";
        return std::nullopt;
      }
      char* end = nullptr;
      const long cluster = std::strtol(fields[1].c_str(), &end, 10);
      if (*end != '\0') {
        KJOIN_LOG(WARNING) << "dataset line " << line_number << ": bad cluster '"
                           << fields[1] << "'";
        return std::nullopt;
      }
      Record record;
      record.id = static_cast<int32_t>(dataset.records.size());
      record.cluster = static_cast<int32_t>(cluster);
      record.tokens.assign(fields.begin() + 2, fields.end());
      dataset.records.push_back(std::move(record));
      continue;
    }
    KJOIN_LOG(WARNING) << "dataset line " << line_number << ": unknown line type '"
                       << fields[0] << "'";
    return std::nullopt;
  }
  return dataset;
}

bool WriteDatasetFile(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    KJOIN_LOG(WARNING) << "cannot open " << path << " for writing";
    return false;
  }
  out << SerializeDataset(dataset);
  return static_cast<bool>(out);
}

std::optional<Dataset> ReadDatasetFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    KJOIN_LOG(WARNING) << "cannot open " << path;
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  // Use the file's basename as the dataset name.
  std::string name = path;
  if (const size_t slash = name.find_last_of('/'); slash != std::string::npos) {
    name = name.substr(slash + 1);
  }
  return ParseDataset(buffer.str(), name);
}

}  // namespace kjoin
