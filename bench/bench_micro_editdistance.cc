// Microbenchmark: edit distance — full DP vs the banded early-exit
// variant used by the entity matcher and the FastJoin baseline.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "text/edit_distance.h"

namespace {

std::vector<std::string> RandomWords(int count, int length, uint64_t seed) {
  kjoin::Rng rng(seed);
  std::vector<std::string> words;
  words.reserve(count);
  for (int i = 0; i < count; ++i) {
    std::string word;
    for (int k = 0; k < length; ++k) {
      word.push_back(static_cast<char>('a' + rng.NextUint64(26)));
    }
    words.push_back(word);
  }
  return words;
}

void BM_EditDistanceFull(benchmark::State& state) {
  const int length = static_cast<int>(state.range(0));
  const auto a = RandomWords(256, length, 1);
  const auto b = RandomWords(256, length, 2);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kjoin::EditDistance(a[i & 255], b[i & 255]));
    ++i;
  }
}
BENCHMARK(BM_EditDistanceFull)->Arg(8)->Arg(16)->Arg(32);

void BM_EditDistanceBounded(benchmark::State& state) {
  const int length = static_cast<int>(state.range(0));
  const auto a = RandomWords(256, length, 1);
  const auto b = RandomWords(256, length, 2);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kjoin::EditDistanceBounded(a[i & 255], b[i & 255], 2));
    ++i;
  }
}
BENCHMARK(BM_EditDistanceBounded)->Arg(8)->Arg(16)->Arg(32);

void BM_EditSimilarityAtLeast(benchmark::State& state) {
  const auto a = RandomWords(256, 12, 1);
  const auto b = RandomWords(256, 12, 2);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kjoin::EditSimilarityAtLeast(a[i & 255], b[i & 255], 0.8));
    ++i;
  }
}
BENCHMARK(BM_EditSimilarityAtLeast);

}  // namespace

BENCHMARK_MAIN();
