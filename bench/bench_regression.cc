// Bench-regression harness: one binary that exercises the hot paths this
// repo optimizes (LCA queries, filter schemes, verification, threading)
// and emits a machine-readable JSON report so successive PRs can be
// compared number-to-number.
//
//   ./bench_regression [--n 6000] [--verify_n 1500] [--micro_queries 2000000]
//                      [--out BENCH_PR4.json]
//
// Sections (keys in the JSON):
//   micro_lca    queries/sec for naive LCA, sparse-table LCA, uncached
//                NodeSim, and NodeSim through a cold / warm SimCache,
//                plus warm_speedup = warm / uncached.
//   fig9_filter  signature-scheme sweep (node vs shallow/deep path):
//                wall time, candidates, results.
//   fig11_verify K-Join+ (plus-mode) verification with the SimCache off
//                vs on (count prunings off, so the similarity work
//                dominates).
//   micro_hungarian  solves/sec of the sparse scratch Hungarian matcher
//                vs the dense oracle on verifier-group-shaped bigraphs,
//                plus the scratch's capacity growths after warm-up
//                (0 = the steady state never touches the allocator).
//   fig14_threads self-join wall time at 1, 2 and 8 threads (best of 3).
//   deadline_overhead  self-join through the controlled entry point with
//                a deadline + cancel token armed but never tripping,
//                vs the legacy entry point: the cost of shard-boundary
//                control polling (docs/robustness.md).
//
// Every joined section also reports whether the result pairs were
// identical across the compared configurations — the cache, the thread
// count, and control polling must never change output.

#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/rng.h"
#include "core/element_similarity.h"
#include "core/sim_cache.h"
#include "core/simd.h"
#include "data/generator.h"
#include "hierarchy/hierarchy_generator.h"
#include "hierarchy/lca.h"
#include "matching/bigraph.h"
#include "matching/hungarian.h"

namespace {

using kjoin::Hierarchy;
using kjoin::LcaIndex;
using kjoin::NodeId;
using kjoin::SimCache;

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::vector<std::pair<NodeId, NodeId>> RandomPairs(const Hierarchy& tree, int count,
                                                   uint64_t seed) {
  kjoin::Rng rng(seed);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(count);
  for (int i = 0; i < count; ++i) {
    pairs.emplace_back(static_cast<NodeId>(rng.NextUint64(tree.num_nodes())),
                       static_cast<NodeId>(rng.NextUint64(tree.num_nodes())));
  }
  return pairs;
}

// Runs `queries` lookups round-robin over `pairs` and returns queries/sec.
// The sink folds results via integer XOR: a += chain of doubles would put
// a 4-cycle FP dependency between iterations and flatten the differences
// this harness exists to measure.
template <typename Fn>
double MeasureQps(int64_t queries, const std::vector<std::pair<NodeId, NodeId>>& pairs,
                  const Fn& fn) {
  const size_t n = pairs.size();
  uint64_t sink = 0;
  const double start = NowSeconds();
  size_t i = 0;
  for (int64_t q = 0; q < queries; ++q) {
    const auto& [x, y] = pairs[i];
    sink ^= std::bit_cast<uint64_t>(fn(x, y));
    if (++i == n) i = 0;
  }
  const double elapsed = NowSeconds() - start;
  // Keep `sink` live so the loop cannot be optimized away.
  if (sink == uint64_t{1}) std::fprintf(stderr, "impossible\n");
  return elapsed > 0.0 ? static_cast<double>(queries) / elapsed : 0.0;
}

struct MicroLcaReport {
  double naive_qps = 0.0;
  double sparse_qps = 0.0;
  double nodesim_uncached_qps = 0.0;
  double nodesim_cached_cold_qps = 0.0;
  double nodesim_cached_warm_qps = 0.0;
  double warm_speedup = 0.0;
  double warm_hit_rate = 0.0;
};

MicroLcaReport RunMicroLca(int64_t queries) {
  const Hierarchy tree = kjoin::GenerateHierarchy(kjoin::HierarchyGenParams{});
  const LcaIndex lca(tree);
  const kjoin::ElementSimilarity esim(lca);
  // Warm set: 1024 pairs fit the thread-local L1. Cold set: enough
  // distinct pairs that the first (and only) lap misses throughout.
  const auto warm_pairs = RandomPairs(tree, 1024, 7);
  const auto cold_pairs = RandomPairs(tree, 1 << 15, 8);

  MicroLcaReport report;
  report.naive_qps = MeasureQps(queries / 20, warm_pairs, [&](NodeId x, NodeId y) {
    return static_cast<double>(tree.LowestCommonAncestorNaive(x, y));
  });
  report.sparse_qps = MeasureQps(queries, warm_pairs, [&](NodeId x, NodeId y) {
    return static_cast<double>(lca.Lca(x, y));
  });
  report.nodesim_uncached_qps = MeasureQps(
      queries, warm_pairs, [&](NodeId x, NodeId y) { return esim.NodeSim(x, y); });

  {
    // Cold: a single pass over distinct pairs against a fresh cache —
    // measures the miss path (lookup + compute + insert).
    const SimCache cache(int64_t{1} << 20);
    const kjoin::ElementSimilarity cached(lca, kjoin::ElementMetric::kKJoin, &cache);
    const int64_t cold_queries =
        std::min<int64_t>(queries, static_cast<int64_t>(cold_pairs.size()));
    report.nodesim_cached_cold_qps = MeasureQps(
        cold_queries, cold_pairs, [&](NodeId x, NodeId y) { return cached.NodeSim(x, y); });
  }
  {
    const SimCache cache(int64_t{1} << 20);
    const kjoin::ElementSimilarity cached(lca, kjoin::ElementMetric::kKJoin, &cache);
    // Prefill, then measure pure-hit throughput.
    for (const auto& [x, y] : warm_pairs) cached.NodeSim(x, y);
    report.nodesim_cached_warm_qps = MeasureQps(
        queries, warm_pairs, [&](NodeId x, NodeId y) { return cached.NodeSim(x, y); });
    report.warm_hit_rate = cache.stats().HitRate();
  }
  report.warm_speedup = report.nodesim_uncached_qps > 0.0
                            ? report.nodesim_cached_warm_qps / report.nodesim_uncached_qps
                            : 0.0;
  return report;
}

struct SchemeRow {
  std::string scheme;
  double total_seconds = 0.0;
  double filter_seconds = 0.0;
  int64_t candidates = 0;
  int64_t results = 0;
};

// fig10_filter_delta: the SIMD filter engine vs forced-scalar dispatch
// per δ, plus result identity across thread counts and dispatch levels.
struct FilterDeltaRow {
  double delta = 0.0;
  double filter_seconds = 0.0;         // dispatched (best of 3)
  double scalar_filter_seconds = 0.0;  // KJOIN-forced scalar (best of 3)
  double filter_speedup_vs_scalar = 0.0;
  double total_seconds = 0.0;
  int64_t candidates = 0;
  int64_t results = 0;
  bool results_identical = true;  // across threads 1/2/8 and scalar-vs-SIMD
};

struct VerifyReport {
  double cache_off_verify_seconds = 0.0;
  double cache_on_verify_seconds = 0.0;
  double verify_speedup = 0.0;
  double sim_cache_hit_rate = 0.0;
  int64_t sim_cache_hits = 0;
  int64_t sim_cache_misses = 0;
  int64_t candidates = 0;
  bool results_identical = false;
};

struct ThreadRow {
  int threads = 1;
  double total_seconds = 0.0;
  bool results_identical = true;
};

struct MicroHungarianReport {
  int64_t graphs = 0;
  int64_t solves = 0;  // per solver
  double sparse_qps = 0.0;
  double dense_qps = 0.0;
  double sparse_speedup = 0.0;
  int64_t scratch_growths_after_warmup = 0;
  bool results_identical = true;
  double checksum = 0.0;  // keeps the solve loops observable
};

// Sparse scratch matcher vs the dense oracle on a pool of bigraphs shaped
// like adaptive-verification groups (2–12 vertices per side, mixed
// sparsity, occasional parallel edges). The scratch growth counter after
// the warm-up pass is the bench-side check that steady-state solves never
// touch the allocator.
MicroHungarianReport RunMicroHungarian(int64_t target_solves) {
  MicroHungarianReport report;
  kjoin::Rng rng(2026);
  std::vector<kjoin::Bigraph> graphs;
  constexpr int kGraphs = 512;
  for (int g = 0; g < kGraphs; ++g) {
    const int32_t left = 2 + static_cast<int32_t>(rng.NextUint64(11));
    const int32_t right = 2 + static_cast<int32_t>(rng.NextUint64(11));
    const double p = 0.15 + 0.7 * rng.NextDouble();
    kjoin::Bigraph graph(left, right);
    for (int32_t l = 0; l < left; ++l) {
      for (int32_t r = 0; r < right; ++r) {
        if (!rng.NextBool(p)) continue;
        graph.AddEdge(l, r, 0.05 + 0.95 * rng.NextDouble());
        if (rng.NextBool(0.1)) graph.AddEdge(l, r, 0.05 + 0.95 * rng.NextDouble());
      }
    }
    graphs.push_back(std::move(graph));
  }
  report.graphs = kGraphs;

  // Warm-up doubles as the equivalence check and sizes the scratch once.
  kjoin::HungarianScratch scratch;
  for (const kjoin::Bigraph& graph : graphs) {
    const double sparse = kjoin::MaxWeightMatching(graph, &scratch);
    const double dense = kjoin::MaxWeightMatchingDense(graph);
    if (std::fabs(sparse - dense) > 1e-9) report.results_identical = false;
  }
  const int64_t growths_after_warmup = scratch.capacity_growths();

  const int64_t rounds = std::max<int64_t>(1, target_solves / kGraphs);
  report.solves = rounds * kGraphs;
  double sparse_sink = 0.0;
  double start = NowSeconds();
  for (int64_t round = 0; round < rounds; ++round) {
    for (const kjoin::Bigraph& graph : graphs) {
      sparse_sink += kjoin::MaxWeightMatching(graph, &scratch);
    }
  }
  const double sparse_seconds = NowSeconds() - start;
  double dense_sink = 0.0;
  start = NowSeconds();
  for (int64_t round = 0; round < rounds; ++round) {
    for (const kjoin::Bigraph& graph : graphs) {
      dense_sink += kjoin::MaxWeightMatchingDense(graph);
    }
  }
  const double dense_seconds = NowSeconds() - start;

  report.scratch_growths_after_warmup = scratch.capacity_growths() - growths_after_warmup;
  report.sparse_qps = sparse_seconds > 0.0 ? report.solves / sparse_seconds : 0.0;
  report.dense_qps = dense_seconds > 0.0 ? report.solves / dense_seconds : 0.0;
  report.sparse_speedup = dense_seconds > 0.0 && sparse_seconds > 0.0
                              ? dense_seconds / sparse_seconds
                              : 0.0;
  if (std::fabs(sparse_sink - dense_sink) > 1e-6 * report.solves) {
    report.results_identical = false;
  }
  report.checksum = sparse_sink;
  return report;
}

std::string JsonBool(bool b) { return b ? "true" : "false"; }

}  // namespace

int main(int argc, char** argv) {
  kjoin::FlagSet flags("bench_regression");
  int64_t* n = flags.Int("n", 6000, "records in the POI-shaped dataset");
  int64_t* verify_n =
      flags.Int("verify_n", 1500, "records in the plus-mode verification section");
  int64_t* micro_queries = flags.Int("micro_queries", 2000000, "micro-LCA lookups per timer");
  int64_t* hungarian_solves =
      flags.Int("hungarian_solves", 200000, "micro-Hungarian solves per solver");
  std::string* out = flags.String("out", "BENCH_PR4.json", "JSON report path");
  if (!flags.Parse(argc, argv)) return 1;

  std::printf("== micro LCA (%lld queries/timer) ==\n",
              static_cast<long long>(*micro_queries));
  const MicroLcaReport micro = RunMicroLca(*micro_queries);
  std::printf("naive %.3g qps | sparse %.3g qps | nodesim %.3g qps | cold %.3g qps | "
              "warm %.3g qps (%.2fx, hit rate %.3f)\n",
              micro.naive_qps, micro.sparse_qps, micro.nodesim_uncached_qps,
              micro.nodesim_cached_cold_qps, micro.nodesim_cached_warm_qps,
              micro.warm_speedup, micro.warm_hit_rate);

  std::printf("== micro Hungarian (%lld solves/solver) ==\n",
              static_cast<long long>(*hungarian_solves));
  const MicroHungarianReport hungarian = RunMicroHungarian(*hungarian_solves);
  std::printf("sparse %.3g qps | dense %.3g qps (%.2fx) | growths after warmup %lld | "
              "identical=%s (checksum %.6g)\n",
              hungarian.sparse_qps, hungarian.dense_qps, hungarian.sparse_speedup,
              static_cast<long long>(hungarian.scratch_growths_after_warmup),
              JsonBool(hungarian.results_identical).c_str(), hungarian.checksum);

  const kjoin::BenchmarkData poi = kjoin::MakePoiBenchmark(*n);
  const kjoin::PreparedObjects prepared =
      kjoin::BuildObjects(poi.hierarchy, poi.dataset, /*multi_mapping=*/false);

  // ---- fig9-style filter scheme sweep ----
  std::printf("== filter schemes (n=%lld, delta=0.8, tau=0.85) ==\n",
              static_cast<long long>(*n));
  std::vector<SchemeRow> scheme_rows;
  const std::pair<kjoin::SignatureScheme, std::string> schemes[] = {
      {kjoin::SignatureScheme::kNode, "node"},
      {kjoin::SignatureScheme::kShallowPath, "shallow_path"},
      {kjoin::SignatureScheme::kDeepPath, "deep_path"},
  };
  for (const auto& [scheme, name] : schemes) {
    kjoin::KJoinOptions options;
    options.delta = 0.8;
    options.tau = 0.85;
    options.scheme = scheme;
    // The weighted prefix (Definition 9) is only defined on deep paths.
    options.weighted_prefix = scheme == kjoin::SignatureScheme::kDeepPath;
    const kjoin::JoinResult result =
        kjoin::bench::RunKJoin(poi.hierarchy, prepared.objects, options);
    scheme_rows.push_back({name, result.stats.total_seconds, result.stats.filter_seconds,
                           result.stats.candidates, result.stats.results});
    std::printf("%-14s %.3fs (filter %.3fs)  candidates=%lld  results=%lld\n", name.c_str(),
                result.stats.total_seconds, result.stats.filter_seconds,
                static_cast<long long>(result.stats.candidates),
                static_cast<long long>(result.stats.results));
  }

  // ---- fig10-style δ sweep: SIMD filter engine vs forced scalar ----
  // Deep-path prefixes at τ=0.85; δ controls signature expansion and so
  // posting-list density — the regime the vector ScanCount accumulator
  // targets. Timing is best-of-3 per dispatch level; identity is checked
  // on every run against the δ's 1-thread dispatched baseline.
  std::printf("== filter engine vs scalar dispatch (deep_path, tau=0.85) ==\n");
  std::vector<FilterDeltaRow> filter_delta_rows;
  for (const double delta : {0.7, 0.8, 0.9}) {
    kjoin::KJoinOptions options;
    options.delta = delta;
    options.tau = 0.85;
    options.scheme = kjoin::SignatureScheme::kDeepPath;
    options.weighted_prefix = true;
    FilterDeltaRow row;
    row.delta = delta;
    std::vector<std::pair<int32_t, int32_t>> baseline_pairs;
    for (int rep = 0; rep < 3; ++rep) {
      for (const int threads : {1, 2, 8}) {
        options.num_threads = threads;
        const kjoin::JoinResult result =
            kjoin::bench::RunKJoin(poi.hierarchy, prepared.objects, options);
        if (threads == 1) {
          if (rep == 0) {
            baseline_pairs = result.pairs;
            row.candidates = result.stats.candidates;
            row.results = result.stats.results;
          }
          if (rep == 0 || result.stats.filter_seconds < row.filter_seconds) {
            row.filter_seconds = result.stats.filter_seconds;
            row.total_seconds = result.stats.total_seconds;
          }
        }
        if (result.pairs != baseline_pairs) row.results_identical = false;
      }
    }
    kjoin::simd::SetActiveLevelForTest(kjoin::simd::IsaLevel::kScalar);
    options.num_threads = 1;
    for (int rep = 0; rep < 3; ++rep) {
      const kjoin::JoinResult result =
          kjoin::bench::RunKJoin(poi.hierarchy, prepared.objects, options);
      if (rep == 0 || result.stats.filter_seconds < row.scalar_filter_seconds) {
        row.scalar_filter_seconds = result.stats.filter_seconds;
      }
      if (result.pairs != baseline_pairs) row.results_identical = false;
    }
    kjoin::simd::ResetActiveLevelForTest();
    row.filter_speedup_vs_scalar =
        row.filter_seconds > 0.0 ? row.scalar_filter_seconds / row.filter_seconds : 0.0;
    filter_delta_rows.push_back(row);
    std::printf("delta=%.1f  filter %.4fs vs scalar %.4fs (%.2fx) | total %.3fs | "
                "candidates=%lld results=%lld identical=%s\n",
                delta, row.filter_seconds, row.scalar_filter_seconds,
                row.filter_speedup_vs_scalar, row.total_seconds,
                static_cast<long long>(row.candidates), static_cast<long long>(row.results),
                JsonBool(row.results_identical).c_str());
  }

  // ---- fig11-style verification: SimCache off vs on (K-Join+) ----
  // Plus-mode verification is the regime the SimCache is built for: every
  // similarity-matrix cell runs the Eq. 2 mapping-pair loop (several
  // NodeSims plus bound arithmetic), and near-duplicate candidate pairs
  // re-evaluate the same token pairs thousands of times; a cached cell
  // collapses to one probe. (Pure-mode cells are a single O(1) RMQ
  // against cache-hot tables — recomputing those already costs about as
  // much as any cache probe, so pure mode is a wash by design; see
  // docs/performance.md.) Count prunings off so verification does the
  // full similarity work.
  std::printf("== K-Join+ verification (n=%lld), SimCache off vs on ==\n",
              static_cast<long long>(*verify_n));
  VerifyReport verify;
  kjoin::JoinResult off_result, on_result;
  {
    const kjoin::BenchmarkData verify_poi = kjoin::MakePoiBenchmark(*verify_n);
    const kjoin::PreparedObjects verify_prepared =
        kjoin::BuildObjects(verify_poi.hierarchy, verify_poi.dataset, /*multi_mapping=*/true);

    kjoin::KJoinOptions options;
    options.delta = 0.8;
    options.tau = 0.75;
    options.plus_mode = true;
    options.count_pruning = false;
    options.weighted_count_pruning = false;
    options.sim_cache = false;
    off_result = kjoin::bench::RunKJoin(verify_poi.hierarchy, verify_prepared.objects, options);
    options.sim_cache = true;
    on_result = kjoin::bench::RunKJoin(verify_poi.hierarchy, verify_prepared.objects, options);
  }
  verify.cache_off_verify_seconds = off_result.stats.verify_seconds;
  verify.cache_on_verify_seconds = on_result.stats.verify_seconds;
  verify.verify_speedup = on_result.stats.verify_seconds > 0.0
                              ? off_result.stats.verify_seconds / on_result.stats.verify_seconds
                              : 0.0;
  verify.sim_cache_hit_rate = on_result.stats.sim_cache_hit_rate;
  verify.sim_cache_hits = on_result.stats.sim_cache_hits;
  verify.sim_cache_misses = on_result.stats.sim_cache_misses;
  verify.candidates = off_result.stats.candidates;
  verify.results_identical = off_result.pairs == on_result.pairs;
  std::printf("off %.3fs | on %.3fs (%.2fx) | hit rate %.3f | identical=%s\n",
              verify.cache_off_verify_seconds, verify.cache_on_verify_seconds,
              verify.verify_speedup, verify.sim_cache_hit_rate,
              JsonBool(verify.results_identical).c_str());

  // ---- fig14-style thread sweep ----
  // Best of 3 per thread count (scheduler noise dwarfs the signal on a
  // sub-second join); identity is checked on EVERY run, not just the best.
  std::printf("== self-join wall time vs threads (best of 3) ==\n");
  std::vector<ThreadRow> thread_rows;
  std::vector<std::pair<int32_t, int32_t>> thread_baseline;
  for (int threads : {1, 2, 8}) {
    kjoin::KJoinOptions options;
    options.delta = 0.8;
    options.tau = 0.85;
    options.num_threads = threads;
    const kjoin::KJoin join(poi.hierarchy, options);
    ThreadRow row;
    row.threads = threads;
    for (int rep = 0; rep < 3; ++rep) {
      kjoin::JoinResult result = join.SelfJoin(prepared.objects);
      if (rep == 0 || result.stats.total_seconds < row.total_seconds) {
        row.total_seconds = result.stats.total_seconds;
      }
      if (threads == 1 && rep == 0) {
        thread_baseline = std::move(result.pairs);
      } else if (result.pairs != thread_baseline) {
        row.results_identical = false;
      }
    }
    thread_rows.push_back(row);
    std::printf("threads=%d  %.3fs  identical=%s\n", threads, row.total_seconds,
                JsonBool(row.results_identical).c_str());
  }

  // ---- control-polling overhead (docs/robustness.md) ----
  // Same workload through the controlled entry point with a deadline and
  // a cancel token armed but never tripping: every shard-boundary poll
  // runs (including the steady_clock reads), no bound trips. Best-of-3
  // per variant to tame scheduler noise.
  std::printf("== control polling overhead (armed, never trips) ==\n");
  double legacy_seconds = 0.0;
  double control_seconds = 0.0;
  int64_t control_polls = 0;
  bool control_identical = false;
  {
    kjoin::KJoinOptions options;
    options.delta = 0.8;
    options.tau = 0.85;
    const kjoin::KJoin join(poi.hierarchy, options);
    std::vector<std::pair<int32_t, int32_t>> legacy_pairs;
    for (int rep = 0; rep < 3; ++rep) {
      kjoin::JoinResult result = join.SelfJoin(prepared.objects);
      if (rep == 0 || result.stats.total_seconds < legacy_seconds) {
        legacy_seconds = result.stats.total_seconds;
      }
      legacy_pairs = std::move(result.pairs);
    }
    kjoin::CancelToken token;
    kjoin::JoinControl control;
    control.deadline_seconds = 3600.0;
    control.cancel_token = &token;
    for (int rep = 0; rep < 3; ++rep) {
      kjoin::JoinResult result;
      const kjoin::Status status = join.SelfJoin(prepared.objects, control, &result);
      if (!status.ok()) {
        std::fprintf(stderr, "controlled join unexpectedly failed: %s\n",
                     status.ToString().c_str());
        return 1;
      }
      if (rep == 0 || result.stats.total_seconds < control_seconds) {
        control_seconds = result.stats.total_seconds;
      }
      control_polls = result.stats.control_polls;
      control_identical = result.pairs == legacy_pairs;
    }
  }
  const double deadline_overhead_pct =
      legacy_seconds > 0.0 ? (control_seconds / legacy_seconds - 1.0) * 100.0 : 0.0;
  std::printf("legacy %.3fs | controlled %.3fs (%+.2f%%) | polls %lld | identical=%s\n",
              legacy_seconds, control_seconds, deadline_overhead_pct,
              static_cast<long long>(control_polls), JsonBool(control_identical).c_str());

  // ---- JSON report ----
  std::FILE* f = std::fopen(out->c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out->c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"kjoin-regression\",\n");
  std::fprintf(f,
               "  \"config\": {\"n\": %lld, \"verify_n\": %lld, \"micro_queries\": "
               "%lld, \"hungarian_solves\": %lld},\n",
               static_cast<long long>(*n), static_cast<long long>(*verify_n),
               static_cast<long long>(*micro_queries),
               static_cast<long long>(*hungarian_solves));
  std::fprintf(f,
               "  \"micro_lca\": {\"naive_qps\": %.1f, \"sparse_qps\": %.1f, "
               "\"nodesim_uncached_qps\": %.1f, \"nodesim_cached_cold_qps\": %.1f, "
               "\"nodesim_cached_warm_qps\": %.1f, \"warm_speedup\": %.3f, "
               "\"warm_hit_rate\": %.4f},\n",
               micro.naive_qps, micro.sparse_qps, micro.nodesim_uncached_qps,
               micro.nodesim_cached_cold_qps, micro.nodesim_cached_warm_qps,
               micro.warm_speedup, micro.warm_hit_rate);
  std::fprintf(f,
               "  \"micro_hungarian\": {\"graphs\": %lld, \"solves\": %lld, "
               "\"sparse_qps\": %.1f, \"dense_qps\": %.1f, \"sparse_speedup\": %.3f, "
               "\"scratch_growths_after_warmup\": %lld, \"results_identical\": %s},\n",
               static_cast<long long>(hungarian.graphs),
               static_cast<long long>(hungarian.solves), hungarian.sparse_qps,
               hungarian.dense_qps, hungarian.sparse_speedup,
               static_cast<long long>(hungarian.scratch_growths_after_warmup),
               JsonBool(hungarian.results_identical).c_str());
  std::fprintf(f, "  \"fig9_filter\": [");
  for (size_t i = 0; i < scheme_rows.size(); ++i) {
    const SchemeRow& row = scheme_rows[i];
    std::fprintf(f,
                 "%s\n    {\"scheme\": \"%s\", \"total_seconds\": %.4f, "
                 "\"filter_seconds\": %.4f, \"candidates\": %lld, \"results\": %lld}",
                 i == 0 ? "" : ",", row.scheme.c_str(), row.total_seconds,
                 row.filter_seconds, static_cast<long long>(row.candidates),
                 static_cast<long long>(row.results));
  }
  std::fprintf(f, "\n  ],\n");
  std::fprintf(f, "  \"fig10_filter_delta\": [");
  for (size_t i = 0; i < filter_delta_rows.size(); ++i) {
    const FilterDeltaRow& row = filter_delta_rows[i];
    std::fprintf(f,
                 "%s\n    {\"delta\": %.1f, \"filter_seconds\": %.4f, "
                 "\"scalar_filter_seconds\": %.4f, \"filter_speedup_vs_scalar\": %.3f, "
                 "\"total_seconds\": %.4f, \"candidates\": %lld, \"results\": %lld, "
                 "\"results_identical\": %s}",
                 i == 0 ? "" : ",", row.delta, row.filter_seconds,
                 row.scalar_filter_seconds, row.filter_speedup_vs_scalar, row.total_seconds,
                 static_cast<long long>(row.candidates), static_cast<long long>(row.results),
                 JsonBool(row.results_identical).c_str());
  }
  std::fprintf(f, "\n  ],\n");
  std::fprintf(f,
               "  \"fig11_verify\": {\"delta\": 0.8, \"tau\": 0.75, \"plus_mode\": true, "
               "\"n\": %lld, "
               "\"cache_off_verify_seconds\": %.4f, \"cache_on_verify_seconds\": %.4f, "
               "\"verify_speedup\": %.3f, \"sim_cache_hit_rate\": %.4f, "
               "\"sim_cache_hits\": %lld, \"sim_cache_misses\": %lld, "
               "\"candidates\": %lld, \"results_identical\": %s},\n",
               static_cast<long long>(*verify_n), verify.cache_off_verify_seconds,
               verify.cache_on_verify_seconds, verify.verify_speedup,
               verify.sim_cache_hit_rate,
               static_cast<long long>(verify.sim_cache_hits),
               static_cast<long long>(verify.sim_cache_misses),
               static_cast<long long>(verify.candidates),
               JsonBool(verify.results_identical).c_str());
  std::fprintf(f, "  \"fig14_threads\": [");
  for (size_t i = 0; i < thread_rows.size(); ++i) {
    const ThreadRow& row = thread_rows[i];
    std::fprintf(f,
                 "%s\n    {\"threads\": %d, \"total_seconds\": %.4f, "
                 "\"results_identical\": %s}",
                 i == 0 ? "" : ",", row.threads, row.total_seconds,
                 JsonBool(row.results_identical).c_str());
  }
  std::fprintf(f, "\n  ],\n");
  std::fprintf(f,
               "  \"deadline_overhead\": {\"legacy_seconds\": %.4f, "
               "\"control_seconds\": %.4f, \"deadline_overhead_pct\": %.2f, "
               "\"control_polls\": %lld, \"results_identical\": %s}\n",
               legacy_seconds, control_seconds, deadline_overhead_pct,
               static_cast<long long>(control_polls), JsonBool(control_identical).c_str());
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out->c_str());
  return 0;
}
