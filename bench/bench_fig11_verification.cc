// Figure 11: verification-time comparison of Basic, SubGraph and Adaptive
// verification, varying τ (δ = 0.8) and δ (POI τ = 0.95, Tweet τ = 0.85),
// on POI and Tweet. The filter is fixed to deep path signatures so only
// the verification strategy differs.
//
//   ./bench_fig11_verification [--n 20000]

#include "bench_util.h"
#include "common/flags.h"

namespace {

using kjoin::bench::Fmt;
using kjoin::bench::PrintRow;

void RunSweep(const std::string& title, const kjoin::BenchmarkData& data,
              const std::vector<std::pair<double, double>>& delta_tau,
              const std::string& vary_label) {
  const kjoin::PreparedObjects prepared =
      kjoin::BuildObjects(data.hierarchy, data.dataset, /*multi_mapping=*/false);
  kjoin::bench::PrintHeader(title);
  PrintRow({vary_label, "basic-s", "subgraph-s", "adaptive-s", "candidates", "hungarian-b",
            "hungarian-a"},
           12);
  for (const auto& [delta, tau] : delta_tau) {
    kjoin::JoinStats stats[3];
    const kjoin::VerifyMode modes[3] = {kjoin::VerifyMode::kBasic,
                                        kjoin::VerifyMode::kSubGraph,
                                        kjoin::VerifyMode::kAdaptive};
    for (int i = 0; i < 3; ++i) {
      kjoin::KJoinOptions options;
      options.delta = delta;
      options.tau = tau;
      options.verify_mode = modes[i];
      // Count prunings off so the three strategies see identical work.
      options.count_pruning = false;
      options.weighted_count_pruning = false;
      stats[i] = kjoin::bench::RunKJoin(data.hierarchy, prepared.objects, options).stats;
    }
    const double vary = vary_label == "tau" ? tau : delta;
    PrintRow({Fmt(vary, 2), Fmt(stats[0].verify_seconds, 2), Fmt(stats[1].verify_seconds, 2),
              Fmt(stats[2].verify_seconds, 2), std::to_string(stats[0].candidates),
              std::to_string(stats[0].verify.hungarian_runs),
              std::to_string(stats[2].verify.hungarian_runs)},
             12);
  }
}

}  // namespace

int main(int argc, char** argv) {
  kjoin::FlagSet flags("bench_fig11_verification");
  int64_t* n = flags.Int("n", 8000, "records per dataset");
  if (!flags.Parse(argc, argv)) return 1;

  const kjoin::BenchmarkData poi = kjoin::MakePoiBenchmark(*n);
  const kjoin::BenchmarkData tweet = kjoin::MakeTweetBenchmark(*n);

  RunSweep("Figure 11a: verification vs tau (POI, delta=0.8)", poi,
           {{0.8, 0.75}, {0.8, 0.80}, {0.8, 0.85}, {0.8, 0.90}, {0.8, 0.95}}, "tau");
  RunSweep("Figure 11b: verification vs tau (Tweet, delta=0.8)", tweet,
           {{0.8, 0.75}, {0.8, 0.80}, {0.8, 0.85}, {0.8, 0.90}, {0.8, 0.95}}, "tau");
  RunSweep("Figure 11c: verification vs delta (POI, tau=0.95)", poi,
           {{0.5, 0.95}, {0.6, 0.95}, {0.7, 0.95}, {0.8, 0.95}, {0.9, 0.95}}, "delta");
  RunSweep("Figure 11d: verification vs delta (Tweet, tau=0.85)", tweet,
           {{0.5, 0.85}, {0.6, 0.85}, {0.7, 0.85}, {0.8, 0.85}, {0.9, 0.85}}, "delta");
  std::printf("\npaper shape: Adaptive < SubGraph < Basic; gaps shrink as tau grows\n"
              "(fewer candidates leave less to save).\n");
  return 0;
}
