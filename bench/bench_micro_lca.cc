// Microbenchmark: LCA queries — the paper's O(depth) bottom-up walk vs
// the Euler-tour + sparse-table index (O(1)), plus element similarity.

#include <benchmark/benchmark.h>

#include <memory>

#include "common/rng.h"
#include "core/element_similarity.h"
#include "core/sim_cache.h"
#include "hierarchy/hierarchy_generator.h"
#include "hierarchy/lca.h"

namespace {

const kjoin::Hierarchy& Tree() {
  static const kjoin::Hierarchy* const tree =
      new kjoin::Hierarchy(kjoin::GenerateHierarchy(kjoin::HierarchyGenParams{}));
  return *tree;
}

std::vector<std::pair<kjoin::NodeId, kjoin::NodeId>> RandomPairs(int count) {
  kjoin::Rng rng(7);
  std::vector<std::pair<kjoin::NodeId, kjoin::NodeId>> pairs;
  pairs.reserve(count);
  for (int i = 0; i < count; ++i) {
    pairs.emplace_back(static_cast<kjoin::NodeId>(rng.NextUint64(Tree().num_nodes())),
                       static_cast<kjoin::NodeId>(rng.NextUint64(Tree().num_nodes())));
  }
  return pairs;
}

void BM_LcaNaive(benchmark::State& state) {
  const auto pairs = RandomPairs(1024);
  size_t i = 0;
  for (auto _ : state) {
    const auto& [x, y] = pairs[i++ & 1023];
    benchmark::DoNotOptimize(Tree().LowestCommonAncestorNaive(x, y));
  }
}
BENCHMARK(BM_LcaNaive);

void BM_LcaSparseTable(benchmark::State& state) {
  static const kjoin::LcaIndex* const index = new kjoin::LcaIndex(Tree());
  const auto pairs = RandomPairs(1024);
  size_t i = 0;
  for (auto _ : state) {
    const auto& [x, y] = pairs[i++ & 1023];
    benchmark::DoNotOptimize(index->Lca(x, y));
  }
}
BENCHMARK(BM_LcaSparseTable);

void BM_LcaIndexBuild(benchmark::State& state) {
  for (auto _ : state) {
    kjoin::LcaIndex index(Tree());
    benchmark::DoNotOptimize(&index);
  }
}
BENCHMARK(BM_LcaIndexBuild);

void BM_ElementNodeSim(benchmark::State& state) {
  static const kjoin::LcaIndex* const index = new kjoin::LcaIndex(Tree());
  static const kjoin::ElementSimilarity* const esim = new kjoin::ElementSimilarity(*index);
  const auto pairs = RandomPairs(1024);
  size_t i = 0;
  for (auto _ : state) {
    const auto& [x, y] = pairs[i++ & 1023];
    benchmark::DoNotOptimize(esim->NodeSim(x, y));
  }
}
BENCHMARK(BM_ElementNodeSim);

// Warm SimCache: the working set (1024 pairs) fits the thread-local L1,
// so after the first lap every lookup is an L1 hit.
void BM_ElementNodeSimCachedWarm(benchmark::State& state) {
  static const kjoin::LcaIndex* const index = new kjoin::LcaIndex(Tree());
  static const kjoin::SimCache* const cache = new kjoin::SimCache(int64_t{1} << 20);
  static const kjoin::ElementSimilarity* const esim = new kjoin::ElementSimilarity(
      *index, kjoin::ElementMetric::kKJoin, cache);
  const auto pairs = RandomPairs(1024);
  size_t i = 0;
  for (auto _ : state) {
    const auto& [x, y] = pairs[i++ & 1023];
    benchmark::DoNotOptimize(esim->NodeSim(x, y));
  }
  state.counters["hit_rate"] = cache->stats().HitRate();
}
BENCHMARK(BM_ElementNodeSimCachedWarm);

// Cold SimCache: the cache is recreated whenever the pair pool wraps, so
// (almost) every timed lookup takes the miss path — measures the cache's
// overhead over the uncached BM_ElementNodeSim, not its benefit.
void BM_ElementNodeSimCachedCold(benchmark::State& state) {
  static const kjoin::LcaIndex* const index = new kjoin::LcaIndex(Tree());
  constexpr int kPool = 1 << 15;
  const auto pairs = RandomPairs(kPool);
  auto cache = std::make_unique<kjoin::SimCache>(int64_t{1} << 20);
  auto esim = std::make_unique<kjoin::ElementSimilarity>(
      *index, kjoin::ElementMetric::kKJoin, cache.get());
  size_t i = 0;
  for (auto _ : state) {
    if (i == kPool) {
      state.PauseTiming();
      i = 0;
      cache = std::make_unique<kjoin::SimCache>(int64_t{1} << 20);
      esim = std::make_unique<kjoin::ElementSimilarity>(
          *index, kjoin::ElementMetric::kKJoin, cache.get());
      state.ResumeTiming();
    }
    const auto& [x, y] = pairs[i++];
    benchmark::DoNotOptimize(esim->NodeSim(x, y));
  }
}
BENCHMARK(BM_ElementNodeSimCachedCold);

}  // namespace

BENCHMARK_MAIN();
