// Microbenchmark: maximum-weight matching and its bounds — the inner loop
// of verification (paper §5).

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "matching/bounds.h"
#include "matching/greedy_matching.h"
#include "matching/hungarian.h"

namespace {

kjoin::Bigraph MakeGraph(int n, double density, uint64_t seed) {
  kjoin::Rng rng(seed);
  kjoin::Bigraph graph(n, n);
  for (int l = 0; l < n; ++l) {
    for (int r = 0; r < n; ++r) {
      if (rng.NextBool(density)) graph.AddEdge(l, r, 0.5 + 0.5 * rng.NextDouble());
    }
  }
  return graph;
}

void BM_Hungarian(benchmark::State& state) {
  const kjoin::Bigraph graph = MakeGraph(static_cast<int>(state.range(0)), 0.3, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kjoin::MaxWeightMatching(graph));
  }
}
BENCHMARK(BM_Hungarian)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_GreedyMaxWeight(benchmark::State& state) {
  const kjoin::Bigraph graph = MakeGraph(static_cast<int>(state.range(0)), 0.3, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kjoin::GreedyMaxWeightLowerBound(graph));
  }
}
BENCHMARK(BM_GreedyMaxWeight)->Arg(8)->Arg(32);

void BM_GreedyMinDegree(benchmark::State& state) {
  const kjoin::Bigraph graph = MakeGraph(static_cast<int>(state.range(0)), 0.3, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kjoin::GreedyMinDegreeLowerBound(graph));
  }
}
BENCHMARK(BM_GreedyMinDegree)->Arg(8)->Arg(32);

void BM_PerVertexUpperBound(benchmark::State& state) {
  const kjoin::Bigraph graph = MakeGraph(static_cast<int>(state.range(0)), 0.3, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kjoin::PerVertexUpperBound(graph));
  }
}
BENCHMARK(BM_PerVertexUpperBound)->Arg(8)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
