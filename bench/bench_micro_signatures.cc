// Microbenchmark: signature generation and prefix computation — the
// filter-side per-object cost (paper §3.1, §4.2).

#include <benchmark/benchmark.h>

#include "core/object_similarity.h"
#include "core/prefix.h"
#include "core/signature.h"
#include "data/benchmark_suite.h"

namespace {

struct Setup {
  kjoin::BenchmarkData data;
  kjoin::PreparedObjects prepared;
};

const Setup& GetSetup() {
  static const Setup* const setup = [] {
    auto* s = new Setup{kjoin::MakePoiBenchmark(2000), {}};
    s->prepared = kjoin::BuildObjects(s->data.hierarchy, s->data.dataset, false);
    return s;
  }();
  return *setup;
}

void BM_SignatureGeneration(benchmark::State& state) {
  const Setup& setup = GetSetup();
  const auto scheme = static_cast<kjoin::SignatureScheme>(state.range(0));
  const kjoin::SignatureGenerator gen(setup.data.hierarchy, kjoin::ElementMetric::kKJoin,
                                      scheme, 0.8);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.Generate(setup.prepared.objects[i % 2000]));
    ++i;
  }
}
BENCHMARK(BM_SignatureGeneration)
    ->Arg(static_cast<int>(kjoin::SignatureScheme::kNode))
    ->Arg(static_cast<int>(kjoin::SignatureScheme::kShallowPath))
    ->Arg(static_cast<int>(kjoin::SignatureScheme::kDeepPath));

void BM_PrefixDistinct(benchmark::State& state) {
  const Setup& setup = GetSetup();
  const kjoin::SignatureGenerator gen(setup.data.hierarchy, kjoin::ElementMetric::kKJoin,
                                      kjoin::SignatureScheme::kDeepPath, 0.8);
  kjoin::GlobalSignatureOrder order;
  std::vector<std::vector<kjoin::Signature>> sigs;
  for (const auto& object : setup.prepared.objects) {
    sigs.push_back(gen.Generate(object));
    order.CountObject(sigs.back());
  }
  order.Finalize();
  for (auto& s : sigs) kjoin::SortByGlobalOrder(order, &s);
  size_t i = 0;
  for (auto _ : state) {
    const auto& object_sigs = sigs[i % sigs.size()];
    const int32_t tau_s = kjoin::MinSimilarElements(
        setup.prepared.objects[i % sigs.size()].size(), 0.9, kjoin::SetMetric::kJaccard);
    benchmark::DoNotOptimize(kjoin::PrefixLengthDistinct(object_sigs, tau_s));
    ++i;
  }
}
BENCHMARK(BM_PrefixDistinct);

void BM_PrefixWeighted(benchmark::State& state) {
  const Setup& setup = GetSetup();
  const kjoin::SignatureGenerator gen(setup.data.hierarchy, kjoin::ElementMetric::kKJoin,
                                      kjoin::SignatureScheme::kDeepPath, 0.8);
  kjoin::GlobalSignatureOrder order;
  std::vector<std::vector<kjoin::Signature>> sigs;
  for (const auto& object : setup.prepared.objects) {
    sigs.push_back(gen.Generate(object));
    order.CountObject(sigs.back());
  }
  order.Finalize();
  for (auto& s : sigs) kjoin::SortByGlobalOrder(order, &s);
  size_t i = 0;
  for (auto _ : state) {
    const auto& object_sigs = sigs[i % sigs.size()];
    const double budget = kjoin::MinOverlapWithAnyPartner(
        setup.prepared.objects[i % sigs.size()].size(), 0.9, kjoin::SetMetric::kJaccard);
    benchmark::DoNotOptimize(kjoin::PrefixLengthWeighted(object_sigs, budget));
    ++i;
  }
}
BENCHMARK(BM_PrefixWeighted);

}  // namespace

BENCHMARK_MAIN();
