#ifndef KJOIN_BENCH_BENCH_UTIL_H_
#define KJOIN_BENCH_BENCH_UTIL_H_

// Shared helpers for the experiment harnesses in bench/. Each bench binary
// regenerates one table or figure of the paper; these helpers provide
// dataset plumbing and homogeneous table output.

#include <cstdio>
#include <string>
#include <vector>

#include "core/kjoin.h"
#include "data/benchmark_suite.h"
#include "data/dataset.h"
#include "data/quality.h"

namespace kjoin::bench {

// Raw token records (for the hierarchy-less baselines).
inline std::vector<std::vector<std::string>> RawRecords(const Dataset& dataset) {
  std::vector<std::vector<std::string>> records;
  records.reserve(dataset.records.size());
  for (const Record& record : dataset.records) records.push_back(record.tokens);
  return records;
}

inline std::vector<int32_t> Clusters(const Dataset& dataset) {
  std::vector<int32_t> clusters;
  clusters.reserve(dataset.records.size());
  for (const Record& record : dataset.records) clusters.push_back(record.cluster);
  return clusters;
}

// One K-Join run with the given thresholds/scheme over prebuilt objects.
inline JoinResult RunKJoin(const Hierarchy& hierarchy, const std::vector<Object>& objects,
                           KJoinOptions options) {
  const KJoin join(hierarchy, options);
  return join.SelfJoin(objects);
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PrintRow(const std::vector<std::string>& cells, int width = 14) {
  for (const std::string& cell : cells) std::printf("%-*s", width, cell.c_str());
  std::printf("\n");
}

inline std::string Fmt(double value, int precision = 3) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

inline std::string FmtCount(int64_t value) { return std::to_string(value); }

}  // namespace kjoin::bench

#endif  // KJOIN_BENCH_BENCH_UTIL_H_
