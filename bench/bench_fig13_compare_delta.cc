// Figure 13: candidate counts and total join time vs δ ∈ [0.5, 0.9] — the
// four systems, POI at τ = 0.95 and Tweet at τ = 0.85.
//
//   ./bench_fig13_compare_delta [--n 5000]

#include "baselines/fastjoin.h"
#include "baselines/synonym_join.h"
#include "bench_util.h"
#include "common/flags.h"

namespace {

using kjoin::bench::Fmt;
using kjoin::bench::PrintRow;

void RunDataset(const std::string& name, const kjoin::BenchmarkData& data, double tau) {
  const auto records = kjoin::bench::RawRecords(data.dataset);

  kjoin::bench::PrintHeader("Figure 13: systems vs delta (" + name + ", tau=" +
                            Fmt(tau, 2) + ", n=" +
                            std::to_string(data.dataset.records.size()) + ")");
  PrintRow({"delta", "FJ-cand", "Syn-cand", "KJ-cand", "KJ+-cand", "FJ-s", "Syn-s", "KJ-s",
            "KJ+-s"},
           11);
  // Synonym has no delta; run it once.
  kjoin::SynonymJoin synonym(data.dataset.synonyms, kjoin::SynonymJoinOptions{tau});
  const kjoin::JoinStats syn = synonym.SelfJoin(records).stats;

  for (double delta : {0.5, 0.6, 0.7, 0.8, 0.9}) {
    kjoin::FastJoin fastjoin(kjoin::FastJoinOptions{delta, tau, 2});
    const kjoin::JoinStats fj = fastjoin.SelfJoin(records).stats;

    const kjoin::PreparedObjects single =
        kjoin::BuildObjects(data.hierarchy, data.dataset, false, delta);
    kjoin::KJoinOptions options;
    options.delta = delta;
    options.tau = tau;
    const kjoin::JoinStats kj =
        kjoin::bench::RunKJoin(data.hierarchy, single.objects, options).stats;

    const kjoin::PreparedObjects plus =
        kjoin::BuildObjects(data.hierarchy, data.dataset, true, delta);
    options.plus_mode = true;
    const kjoin::JoinStats kjp =
        kjoin::bench::RunKJoin(data.hierarchy, plus.objects, options).stats;

    PrintRow({Fmt(delta, 2), std::to_string(fj.candidates), std::to_string(syn.candidates),
              std::to_string(kj.candidates), std::to_string(kjp.candidates),
              Fmt(fj.total_seconds, 2), Fmt(syn.total_seconds, 2), Fmt(kj.total_seconds, 2),
              Fmt(kjp.total_seconds, 2)},
             11);
  }
}

}  // namespace

int main(int argc, char** argv) {
  kjoin::FlagSet flags("bench_fig13_compare_delta");
  int64_t* n = flags.Int("n", 2000, "records per dataset");
  if (!flags.Parse(argc, argv)) return 1;
  RunDataset("POI", kjoin::MakePoiBenchmark(*n), /*tau=*/0.95);
  RunDataset("Tweet", kjoin::MakeTweetBenchmark(*n), /*tau=*/0.85);
  std::printf("\npaper shape: the K-Join advantage is largest at small delta; Synonym\n"
              "is flat in delta; gaps shrink as delta grows.\n");
  return 0;
}
