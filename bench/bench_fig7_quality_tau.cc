// Figure 7: effectiveness (recall and F-measure) vs the object threshold
// τ ∈ [0.5, 0.9] at δ = 0.5, on Pub and Res, for FastJoin, Synonym,
// K-Join and K-Join+.
//
//   ./bench_fig7_quality_tau [--delta 0.5]

#include "baselines/fastjoin.h"
#include "baselines/synonym_join.h"
#include "bench_util.h"
#include "common/flags.h"

namespace {

using kjoin::bench::Fmt;
using kjoin::bench::PrintRow;

struct QualityRow {
  kjoin::QualityReport fastjoin, synonym, kjoin_single, kjoin_plus;
};

QualityRow RunAll(const kjoin::BenchmarkData& data, double delta, double tau) {
  QualityRow row;
  const auto truth = kjoin::GroundTruthPairs(data.dataset);
  const auto records = kjoin::bench::RawRecords(data.dataset);

  kjoin::FastJoin fastjoin(kjoin::FastJoinOptions{std::max(delta, 0.5), tau, 2});
  row.fastjoin = kjoin::EvaluateQuality(fastjoin.SelfJoin(records).pairs, truth);

  kjoin::SynonymJoin synonym(data.dataset.synonyms, kjoin::SynonymJoinOptions{tau});
  row.synonym = kjoin::EvaluateQuality(synonym.SelfJoin(records).pairs, truth);

  const kjoin::PreparedObjects single =
      kjoin::BuildObjects(data.hierarchy, data.dataset, false, delta);
  kjoin::KJoinOptions options;
  options.delta = delta;
  options.tau = tau;
  row.kjoin_single = kjoin::EvaluateQuality(
      kjoin::bench::RunKJoin(data.hierarchy, single.objects, options).pairs, truth);

  const kjoin::PreparedObjects plus =
      kjoin::BuildObjects(data.hierarchy, data.dataset, true, delta);
  options.plus_mode = true;
  row.kjoin_plus = kjoin::EvaluateQuality(
      kjoin::bench::RunKJoin(data.hierarchy, plus.objects, options).pairs, truth);
  return row;
}

void RunDataset(const std::string& name, const kjoin::BenchmarkData& data, double delta) {
  kjoin::bench::PrintHeader("Figure 7: recall & F-measure vs tau (" + name +
                            ", delta=" + Fmt(delta, 2) + ")");
  PrintRow({"tau", "FJ-rec", "Syn-rec", "KJ-rec", "KJ+-rec", "FJ-F", "Syn-F", "KJ-F",
            "KJ+-F"},
           10);
  for (double tau : {0.5, 0.6, 0.7, 0.8, 0.9}) {
    const QualityRow row = RunAll(data, delta, tau);
    PrintRow({Fmt(tau, 2), Fmt(row.fastjoin.recall * 100, 1), Fmt(row.synonym.recall * 100, 1),
              Fmt(row.kjoin_single.recall * 100, 1), Fmt(row.kjoin_plus.recall * 100, 1),
              Fmt(row.fastjoin.f_measure, 3), Fmt(row.synonym.f_measure, 3),
              Fmt(row.kjoin_single.f_measure, 3), Fmt(row.kjoin_plus.f_measure, 3)},
             10);
  }
}

}  // namespace

int main(int argc, char** argv) {
  kjoin::FlagSet flags("bench_fig7_quality_tau");
  double* delta = flags.Double("delta", 0.5, "element similarity threshold");
  if (!flags.Parse(argc, argv)) return 1;
  RunDataset("Pub", kjoin::MakePubBenchmark(), *delta);
  RunDataset("Res", kjoin::MakeResBenchmark(), *delta);
  std::printf("\npaper shape: recall falls with tau; K-Join+ dominates recall and F;\n"
              "Synonym trails on Pub (typos), FastJoin trails on Res (synonyms).\n");
  return 0;
}
