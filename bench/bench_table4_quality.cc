// Table 4: result quality (precision / recall / F-measure) on Pub and Res
// at δ = 0.5, τ = 0.6 for FastJoin, K-Join, K-Join+, Synonym and the
// simulated Crowd baseline.
//
//   ./bench_table4_quality [--delta 0.5] [--tau 0.6]

#include "baselines/crowd_join.h"
#include "baselines/fastjoin.h"
#include "baselines/ppjoin.h"
#include "baselines/synonym_join.h"
#include "bench_util.h"
#include "common/flags.h"

namespace {

using kjoin::bench::Fmt;
using kjoin::bench::PrintRow;

void Report(const std::string& system, const kjoin::QualityReport& report) {
  PrintRow({system, Fmt(report.precision * 100, 1), Fmt(report.recall * 100, 1),
            Fmt(report.f_measure * 100, 1)});
}

void RunDataset(const std::string& name, const kjoin::BenchmarkData& data, double delta,
                double tau) {
  kjoin::bench::PrintHeader("Table 4: quality on " + name + " (delta=" +
                            kjoin::bench::Fmt(delta, 2) + ", tau=" +
                            kjoin::bench::Fmt(tau, 2) + ")");
  PrintRow({"System", "Precision", "Recall", "F-measure"});

  const auto truth = kjoin::GroundTruthPairs(data.dataset);
  const auto records = kjoin::bench::RawRecords(data.dataset);

  {
    kjoin::FastJoin fastjoin(kjoin::FastJoinOptions{std::max(delta, 0.5), tau, 2});
    Report("FastJoin", kjoin::EvaluateQuality(fastjoin.SelfJoin(records).pairs, truth));
  }
  {
    const kjoin::PreparedObjects prepared =
        kjoin::BuildObjects(data.hierarchy, data.dataset, /*multi_mapping=*/false, delta);
    kjoin::KJoinOptions options;
    options.delta = delta;
    options.tau = tau;
    const kjoin::JoinResult result =
        kjoin::bench::RunKJoin(data.hierarchy, prepared.objects, options);
    Report("K-Join", kjoin::EvaluateQuality(result.pairs, truth));
  }
  {
    const kjoin::PreparedObjects prepared =
        kjoin::BuildObjects(data.hierarchy, data.dataset, /*multi_mapping=*/true, delta);
    kjoin::KJoinOptions options;
    options.delta = delta;
    options.tau = tau;
    options.plus_mode = true;
    const kjoin::JoinResult result =
        kjoin::bench::RunKJoin(data.hierarchy, prepared.objects, options);
    Report("K-Join+", kjoin::EvaluateQuality(result.pairs, truth));
  }
  {
    kjoin::SynonymJoin synonym(data.dataset.synonyms, kjoin::SynonymJoinOptions{tau});
    Report("Synonym", kjoin::EvaluateQuality(synonym.SelfJoin(records).pairs, truth));
  }
  {
    // Extra baseline (not in the paper's table): plain exact-Jaccard
    // PPJoin, isolating what knowledge-free set matching achieves.
    kjoin::PpJoin ppjoin(kjoin::PpJoinOptions{tau, true});
    Report("PPJoin*", kjoin::EvaluateQuality(ppjoin.SelfJoin(records).pairs, truth));
  }
  {
    kjoin::CrowdJoin crowd(kjoin::CrowdJoinOptions{});
    Report("Crowd", kjoin::EvaluateQuality(
                        crowd.SelfJoin(records, kjoin::bench::Clusters(data.dataset)).pairs,
                        truth));
  }
}

}  // namespace

int main(int argc, char** argv) {
  kjoin::FlagSet flags("bench_table4_quality");
  double* delta = flags.Double("delta", 0.5, "element similarity threshold");
  double* tau = flags.Double("tau", 0.6, "object similarity threshold");
  if (!flags.Parse(argc, argv)) return 1;

  RunDataset("Pub", kjoin::MakePubBenchmark(), *delta, *tau);
  std::printf("paper:  FastJoin 87.6/52.4/65.1  K-Join 89.1/33.8/49.2  "
              "K-Join+ 88.4/71.2/80.1  Synonym 89.1/15.9/27.2  Crowd 68.8/95.0/80.1\n");

  RunDataset("Res", kjoin::MakeResBenchmark(), *delta, *tau);
  std::printf("paper:  FastJoin 81.5/47.3/60.0  K-Join 85.8/73.2/79.2  "
              "K-Join+ 85.3/83.0/84.0  Synonym 89.5/61.6/76.1  Crowd 81.4/88.8/84.9\n");
  return 0;
}
