// Table 3: dataset shape statistics for Pub, Res, POI, Tweet.
//
//   ./bench_table3_datasets [--poi 20000] [--tweet 20000]
//
// POI/Tweet default to laptop scale; pass --poi 100000 etc. for the
// paper's "small" scale.

#include "bench_util.h"
#include "common/flags.h"
#include "text/entity_matcher.h"

namespace {

void PrintStats(const std::string& name, const kjoin::BenchmarkData& data) {
  const kjoin::EntityMatcher matcher(data.hierarchy);
  const kjoin::DatasetStats stats = kjoin::ComputeDatasetStats(data.dataset, matcher);
  kjoin::bench::PrintRow({name, std::to_string(stats.size),
                          kjoin::bench::Fmt(stats.avg_len, 1), std::to_string(stats.max_len),
                          std::to_string(stats.min_len),
                          kjoin::bench::Fmt(stats.avg_depth, 1),
                          std::to_string(stats.num_truth_pairs)});
}

}  // namespace

int main(int argc, char** argv) {
  kjoin::FlagSet flags("bench_table3_datasets");
  int64_t* poi = flags.Int("poi", 20000, "POI records");
  int64_t* tweet = flags.Int("tweet", 20000, "Tweet records");
  if (!flags.Parse(argc, argv)) return 1;

  kjoin::bench::PrintHeader("Table 3: Datasets");
  kjoin::bench::PrintRow(
      {"Dataset", "Size", "AvgLen", "MaxLen", "MinLen", "AvgDep", "TruthPairs"});
  PrintStats("Pub", kjoin::MakePubBenchmark());
  PrintStats("Res", kjoin::MakeResBenchmark());
  PrintStats("POI", kjoin::MakePoiBenchmark(*poi));
  PrintStats("Tweet", kjoin::MakeTweetBenchmark(*tweet));
  std::printf(
      "\npaper: Pub 1879/6/16/4/3, Res 864/4/4/4/5, POI 11/21/2/4, Tweet ~8/23/2/5\n");
  return 0;
}
