// Figure 12: candidate counts and total join time vs τ ∈ [0.75, 0.95] at
// δ = 0.8 — FastJoin and Synonym against K-Join and K-Join+, on the
// "small" POI and Tweet datasets.
//
//   ./bench_fig12_compare_tau [--n 5000]
//
// The default scale is laptop-friendly; pass --n 100000 for the paper's
// small-dataset scale (FastJoin's candidate blowup makes that slow, which
// is the paper's point).

#include "baselines/fastjoin.h"
#include "baselines/synonym_join.h"
#include "bench_util.h"
#include "common/flags.h"

namespace {

using kjoin::bench::Fmt;
using kjoin::bench::PrintRow;

void RunDataset(const std::string& name, const kjoin::BenchmarkData& data, double delta) {
  const auto records = kjoin::bench::RawRecords(data.dataset);
  const kjoin::PreparedObjects single =
      kjoin::BuildObjects(data.hierarchy, data.dataset, false, delta);
  const kjoin::PreparedObjects plus =
      kjoin::BuildObjects(data.hierarchy, data.dataset, true, delta);

  kjoin::bench::PrintHeader("Figure 12: systems vs tau (" + name + ", delta=" +
                            Fmt(delta, 2) + ", n=" +
                            std::to_string(data.dataset.records.size()) + ")");
  PrintRow({"tau", "FJ-cand", "Syn-cand", "KJ-cand", "KJ+-cand", "FJ-s", "Syn-s", "KJ-s",
            "KJ+-s"},
           11);
  for (double tau : {0.75, 0.80, 0.85, 0.90, 0.95}) {
    kjoin::FastJoin fastjoin(kjoin::FastJoinOptions{delta, tau, 2});
    const kjoin::JoinStats fj = fastjoin.SelfJoin(records).stats;

    kjoin::SynonymJoin synonym(data.dataset.synonyms, kjoin::SynonymJoinOptions{tau});
    const kjoin::JoinStats syn = synonym.SelfJoin(records).stats;

    kjoin::KJoinOptions options;
    options.delta = delta;
    options.tau = tau;
    const kjoin::JoinStats kj =
        kjoin::bench::RunKJoin(data.hierarchy, single.objects, options).stats;

    options.plus_mode = true;
    const kjoin::JoinStats kjp =
        kjoin::bench::RunKJoin(data.hierarchy, plus.objects, options).stats;

    PrintRow({Fmt(tau, 2), std::to_string(fj.candidates), std::to_string(syn.candidates),
              std::to_string(kj.candidates), std::to_string(kjp.candidates),
              Fmt(fj.total_seconds, 2), Fmt(syn.total_seconds, 2), Fmt(kj.total_seconds, 2),
              Fmt(kjp.total_seconds, 2)},
             11);
  }
}

}  // namespace

int main(int argc, char** argv) {
  kjoin::FlagSet flags("bench_fig12_compare_tau");
  int64_t* n = flags.Int("n", 2000, "records per dataset");
  double* delta = flags.Double("delta", 0.8, "element similarity threshold");
  if (!flags.Parse(argc, argv)) return 1;
  RunDataset("POI", kjoin::MakePoiBenchmark(*n), *delta);
  RunDataset("Tweet", kjoin::MakeTweetBenchmark(*n), *delta);
  std::printf("\npaper shape: K-Join/K-Join+ candidates and time are 2-3 orders of\n"
              "magnitude below FastJoin and well below Synonym; K-Join is slightly\n"
              "faster than K-Join+.\n");
  return 0;
}
