// Figure 9: filtering power — candidate counts and join time for the
// Node, Shallow and Deep signature schemes, varying τ ∈ [0.75, 0.95] at
// δ = 0.8, on POI and Tweet.
//
//   ./bench_fig9_filter_tau [--n 20000]

#include "bench_util.h"
#include "common/flags.h"

namespace {

using kjoin::bench::Fmt;
using kjoin::bench::PrintRow;

void RunDataset(const std::string& name, const kjoin::BenchmarkData& data, double delta) {
  const kjoin::PreparedObjects prepared =
      kjoin::BuildObjects(data.hierarchy, data.dataset, /*multi_mapping=*/false);

  kjoin::bench::PrintHeader("Figure 9: filtering vs tau (" + name + ", delta=" +
                            Fmt(delta, 2) + ", n=" +
                            std::to_string(data.dataset.records.size()) + ")");
  PrintRow({"tau", "node-cand", "shal-cand", "deep-cand", "node-s", "shal-s", "deep-s",
            "results"},
           12);
  for (double tau : {0.75, 0.80, 0.85, 0.90, 0.95}) {
    kjoin::JoinStats stats[3];
    const kjoin::SignatureScheme schemes[3] = {kjoin::SignatureScheme::kNode,
                                               kjoin::SignatureScheme::kShallowPath,
                                               kjoin::SignatureScheme::kDeepPath};
    for (int i = 0; i < 3; ++i) {
      kjoin::KJoinOptions options;
      options.delta = delta;
      options.tau = tau;
      options.scheme = schemes[i];
      options.weighted_prefix = schemes[i] == kjoin::SignatureScheme::kDeepPath;
      stats[i] = kjoin::bench::RunKJoin(data.hierarchy, prepared.objects, options).stats;
    }
    PrintRow({Fmt(tau, 2), std::to_string(stats[0].candidates),
              std::to_string(stats[1].candidates), std::to_string(stats[2].candidates),
              Fmt(stats[0].total_seconds, 2), Fmt(stats[1].total_seconds, 2),
              Fmt(stats[2].total_seconds, 2), std::to_string(stats[2].results)},
             12);
  }
}

}  // namespace

int main(int argc, char** argv) {
  kjoin::FlagSet flags("bench_fig9_filter_tau");
  int64_t* n = flags.Int("n", 10000, "records per dataset");
  double* delta = flags.Double("delta", 0.8, "element similarity threshold");
  if (!flags.Parse(argc, argv)) return 1;
  RunDataset("POI", kjoin::MakePoiBenchmark(*n), *delta);
  RunDataset("Tweet", kjoin::MakeTweetBenchmark(*n), *delta);
  std::printf("\npaper shape: Deep <= Shallow << Node in candidates and time;\n"
              "candidates shrink as tau grows.\n");
  return 0;
}
