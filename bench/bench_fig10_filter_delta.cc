// Figure 10: filtering power — candidate counts and join time for Node /
// Shallow / Deep signatures, varying δ ∈ [0.5, 0.9] (POI at τ = 0.95,
// Tweet at τ = 0.85).
//
//   ./bench_fig10_filter_delta [--n 20000]

#include "bench_util.h"
#include "common/flags.h"

namespace {

using kjoin::bench::Fmt;
using kjoin::bench::PrintRow;

void RunDataset(const std::string& name, const kjoin::BenchmarkData& data, double tau) {
  const kjoin::PreparedObjects prepared =
      kjoin::BuildObjects(data.hierarchy, data.dataset, /*multi_mapping=*/false);

  kjoin::bench::PrintHeader("Figure 10: filtering vs delta (" + name + ", tau=" +
                            Fmt(tau, 2) + ", n=" +
                            std::to_string(data.dataset.records.size()) + ")");
  PrintRow({"delta", "node-cand", "shal-cand", "deep-cand", "node-s", "shal-s", "deep-s"},
           12);
  for (double delta : {0.5, 0.6, 0.7, 0.8, 0.9}) {
    kjoin::JoinStats stats[3];
    const kjoin::SignatureScheme schemes[3] = {kjoin::SignatureScheme::kNode,
                                               kjoin::SignatureScheme::kShallowPath,
                                               kjoin::SignatureScheme::kDeepPath};
    for (int i = 0; i < 3; ++i) {
      kjoin::KJoinOptions options;
      options.delta = delta;
      options.tau = tau;
      options.scheme = schemes[i];
      options.weighted_prefix = schemes[i] == kjoin::SignatureScheme::kDeepPath;
      stats[i] = kjoin::bench::RunKJoin(data.hierarchy, prepared.objects, options).stats;
    }
    PrintRow({Fmt(delta, 2), std::to_string(stats[0].candidates),
              std::to_string(stats[1].candidates), std::to_string(stats[2].candidates),
              Fmt(stats[0].total_seconds, 2), Fmt(stats[1].total_seconds, 2),
              Fmt(stats[2].total_seconds, 2)},
             12);
  }
}

}  // namespace

int main(int argc, char** argv) {
  kjoin::FlagSet flags("bench_fig10_filter_delta");
  int64_t* n = flags.Int("n", 10000, "records per dataset");
  if (!flags.Parse(argc, argv)) return 1;
  RunDataset("POI", kjoin::MakePoiBenchmark(*n), /*tau=*/0.95);
  RunDataset("Tweet", kjoin::MakeTweetBenchmark(*n), /*tau=*/0.85);
  std::printf("\npaper shape: for small delta, Shallow ~ Node (coarse signatures) while\n"
              "Deep stays far ahead; the gap narrows as delta grows.\n");
  return 0;
}
