// Extension bench (not a paper figure): KJoinIndex similarity-search
// throughput vs threshold, plus the serving stack — snapshot-load vs
// text-parse+rebuild cold start, and concurrent SearchService QPS with
// latency percentiles. With --out the serving sections are written as a
// JSON report that scripts/run_bench.sh merges into BENCH_PR5.json
// (scripts/compare_bench.py tracks the speedup and per-client QPS).
//
//   ./bench_search [--n 20000] [--queries 2000]
//                  [--serve_n 4000] [--serve_queries 240] [--out serving.json]

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/kjoin_index.h"
#include "data/dataset_io.h"
#include "hierarchy/hierarchy_io.h"
#include "serve/index_manager.h"
#include "serve/search_service.h"
#include "serve/snapshot.h"

namespace {

using kjoin::bench::Fmt;
using kjoin::bench::PrintRow;

std::string JsonBool(bool b) { return b ? "true" : "false"; }

double Percentile(std::vector<double> sorted_ascending, double q) {
  if (sorted_ascending.empty()) return 0.0;
  const size_t at = std::min(sorted_ascending.size() - 1,
                             static_cast<size_t>(q * (sorted_ascending.size() - 1) + 0.5));
  return sorted_ascending[at];
}

struct ConcurrentRow {
  int clients = 0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  bool results_identical = false;
};

}  // namespace

int main(int argc, char** argv) {
  kjoin::FlagSet flags("bench_search");
  int64_t* n = flags.Int("n", 20000, "indexed records (threshold sweep)");
  int64_t* num_queries = flags.Int("queries", 2000, "queries to run (threshold sweep)");
  int64_t* serve_n = flags.Int("serve_n", 4000, "indexed records (serving sections)");
  int64_t* serve_queries = flags.Int("serve_queries", 240, "queries per client count");
  std::string* out = flags.String("out", "", "write the serving sections as JSON here");
  if (!flags.Parse(argc, argv)) return 1;

  const kjoin::BenchmarkData data = kjoin::MakePoiBenchmark(*n);
  const kjoin::PreparedObjects prepared =
      kjoin::BuildObjects(data.hierarchy, data.dataset, /*multi_mapping=*/false);

  kjoin::bench::PrintHeader("Similarity search (POI, n=" + std::to_string(*n) + ", " +
                            std::to_string(*num_queries) + " queries)");
  PrintRow({"tau", "build-s", "qps", "avg-cand", "avg-hits"}, 12);
  for (double tau : {0.6, 0.7, 0.8, 0.9}) {
    kjoin::KJoinOptions options;
    options.delta = 0.8;
    options.tau = tau;
    kjoin::WallTimer build_timer;
    const kjoin::KJoinIndex index(data.hierarchy, options, prepared.objects);
    const double build_seconds = build_timer.ElapsedSeconds();

    kjoin::WallTimer query_timer;
    int64_t total_candidates = 0;
    int64_t total_hits = 0;
    for (int64_t q = 0; q < *num_queries; ++q) {
      const kjoin::Object& query = prepared.objects[(q * 131) % prepared.objects.size()];
      total_hits += static_cast<int64_t>(index.Search(query).size());
      total_candidates += index.last_candidates();
    }
    const double seconds = query_timer.ElapsedSeconds();
    PrintRow({Fmt(tau, 2), Fmt(build_seconds, 2),
              Fmt(*num_queries / std::max(seconds, 1e-9), 0),
              Fmt(static_cast<double>(total_candidates) / *num_queries, 1),
              Fmt(static_cast<double>(total_hits) / *num_queries, 2)},
             12);
  }

  // ---- serving: cold start, snapshot-load vs text-parse+rebuild --------
  // Both paths start from the serialized artifacts a server would ship:
  // the text hierarchy/dataset files versus one binary snapshot.
  kjoin::bench::PrintHeader("Serving cold start (n=" + std::to_string(*serve_n) + ")");
  const kjoin::BenchmarkData serve_data = kjoin::MakePoiBenchmark(*serve_n, /*seed=*/51);
  const std::string tree_text = kjoin::SerializeHierarchy(serve_data.hierarchy);
  const std::string data_text = kjoin::SerializeDataset(serve_data.dataset);
  kjoin::KJoinOptions serve_options;
  serve_options.delta = 0.8;
  serve_options.tau = 0.6;
  serve_options.plus_mode = true;

  kjoin::WallTimer rebuild_timer;
  auto parsed_tree = kjoin::ParseHierarchy(tree_text, "bench");
  auto parsed_data = kjoin::ParseDataset(data_text, "bench");
  if (!parsed_tree.ok() || !parsed_data.ok()) {
    std::fprintf(stderr, "cold-start parse failed\n");
    return 1;
  }
  const kjoin::PreparedObjects rebuilt =
      kjoin::BuildObjects(*parsed_tree, *parsed_data, /*multi_mapping=*/true, 0.8);
  const kjoin::KJoinIndex rebuilt_index(*parsed_tree, serve_options, rebuilt.objects);
  const double rebuild_seconds = rebuild_timer.ElapsedSeconds();

  const std::string snapshot_path = "/tmp/bench_search_serving.snap";
  kjoin::serve::SnapshotInput input;
  input.index = &rebuilt_index;
  input.tokens = rebuilt.builder->TokenTable();
  input.synonyms = parsed_data->synonyms;
  if (!kjoin::serve::SaveIndexSnapshot(input, snapshot_path).ok()) {
    std::fprintf(stderr, "snapshot save failed\n");
    return 1;
  }
  kjoin::WallTimer load_timer;
  auto loaded = kjoin::serve::LoadIndexSnapshot(snapshot_path);
  const double load_seconds = load_timer.ElapsedSeconds();
  if (!loaded.ok()) {
    std::fprintf(stderr, "snapshot load failed: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  const uint64_t snapshot_bytes = loaded->file_bytes;
  const double snapshot_speedup = rebuild_seconds / std::max(load_seconds, 1e-9);
  PrintRow({"path", "seconds"}, 24);
  PrintRow({"text-parse+rebuild", Fmt(rebuild_seconds, 3)}, 24);
  PrintRow({"snapshot-load", Fmt(load_seconds, 3)}, 24);
  std::printf("snapshot: %llu bytes, load speedup %.1fx\n",
              static_cast<unsigned long long>(snapshot_bytes), snapshot_speedup);

  // ---- serving: concurrent QPS over the loaded snapshot ----------------
  kjoin::bench::PrintHeader("Concurrent SearchService QPS (" +
                            std::to_string(*serve_queries) + " queries per client count)");
  kjoin::serve::QueryPipeline pipeline = kjoin::serve::MakeQueryPipeline(*loaded);
  kjoin::ThreadPool pool(2);
  kjoin::serve::IndexManager manager(std::move(*loaded), &pool);
  kjoin::serve::SearchService service(&manager, &pool);

  std::vector<kjoin::serve::QueryRequest> requests(*serve_queries);
  for (int64_t q = 0; q < *serve_queries; ++q) {
    std::vector<std::string> tokens =
        serve_data.dataset.records[(q * 97) % *serve_n].tokens;
    if (tokens.size() > 1) tokens.pop_back();
    requests[q].query = pipeline.builder->Build(-1, tokens);
    requests[q].top_k = 3;
  }
  // Serial baseline: concurrency must never change answers.
  std::vector<std::vector<kjoin::SearchHit>> baseline(requests.size());
  for (size_t q = 0; q < requests.size(); ++q) baseline[q] = service.Search(requests[q]).hits;

  PrintRow({"clients", "qps", "p50-ms", "p99-ms", "identical"}, 12);
  std::vector<ConcurrentRow> concurrent_rows;
  for (int clients : {1, 2, 8}) {
    std::vector<std::vector<double>> latencies(clients);
    std::atomic<int> mismatches{0};
    kjoin::WallTimer wall;
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        latencies[c].reserve(requests.size() / clients + 1);
        for (size_t q = c; q < requests.size(); q += clients) {
          const kjoin::serve::QueryResponse response = service.Search(requests[q]);
          latencies[c].push_back(response.seconds);
          if (!response.status.ok() || response.hits != baseline[q]) mismatches.fetch_add(1);
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    const double seconds = wall.ElapsedSeconds();

    std::vector<double> all;
    for (const auto& per_client : latencies) all.insert(all.end(), per_client.begin(), per_client.end());
    std::sort(all.begin(), all.end());
    ConcurrentRow row;
    row.clients = clients;
    row.qps = static_cast<double>(all.size()) / std::max(seconds, 1e-9);
    row.p50_ms = Percentile(all, 0.50) * 1e3;
    row.p99_ms = Percentile(all, 0.99) * 1e3;
    row.results_identical = mismatches.load() == 0;
    concurrent_rows.push_back(row);
    PrintRow({std::to_string(clients), Fmt(row.qps, 0), Fmt(row.p50_ms, 3), Fmt(row.p99_ms, 3),
              JsonBool(row.results_identical)},
             12);
  }
  std::remove(snapshot_path.c_str());

  // ---- JSON report (serving sections only; run_bench.sh merges it) -----
  if (!out->empty()) {
    std::FILE* f = std::fopen(out->c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", out->c_str());
      return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f,
                 "  \"serving_cold_start\": {\"n\": %lld, \"rebuild_seconds\": %.4f, "
                 "\"load_seconds\": %.4f, \"snapshot_speedup\": %.2f, "
                 "\"snapshot_bytes\": %llu},\n",
                 static_cast<long long>(*serve_n), rebuild_seconds, load_seconds,
                 snapshot_speedup, static_cast<unsigned long long>(snapshot_bytes));
    std::fprintf(f, "  \"serving_qps\": [");
    for (size_t i = 0; i < concurrent_rows.size(); ++i) {
      const ConcurrentRow& row = concurrent_rows[i];
      std::fprintf(f,
                   "%s\n    {\"clients\": %d, \"qps\": %.1f, \"p50_ms\": %.3f, "
                   "\"p99_ms\": %.3f, \"results_identical\": %s}",
                   i == 0 ? "" : ",", row.clients, row.qps, row.p50_ms, row.p99_ms,
                   JsonBool(row.results_identical).c_str());
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out->c_str());
  }
  return 0;
}
