// Extension bench (not a paper figure): KJoinIndex similarity-search
// throughput vs collection size, threshold and mode.
//
//   ./bench_search [--n 20000] [--queries 2000]

#include "bench_util.h"
#include "common/flags.h"
#include "common/timer.h"
#include "core/kjoin_index.h"

namespace {

using kjoin::bench::Fmt;
using kjoin::bench::PrintRow;

}  // namespace

int main(int argc, char** argv) {
  kjoin::FlagSet flags("bench_search");
  int64_t* n = flags.Int("n", 20000, "indexed records");
  int64_t* num_queries = flags.Int("queries", 2000, "queries to run");
  if (!flags.Parse(argc, argv)) return 1;

  const kjoin::BenchmarkData data = kjoin::MakePoiBenchmark(*n);
  const kjoin::PreparedObjects prepared =
      kjoin::BuildObjects(data.hierarchy, data.dataset, /*multi_mapping=*/false);

  kjoin::bench::PrintHeader("Similarity search (POI, n=" + std::to_string(*n) + ", " +
                            std::to_string(*num_queries) + " queries)");
  PrintRow({"tau", "build-s", "qps", "avg-cand", "avg-hits"}, 12);
  for (double tau : {0.6, 0.7, 0.8, 0.9}) {
    kjoin::KJoinOptions options;
    options.delta = 0.8;
    options.tau = tau;
    kjoin::WallTimer build_timer;
    const kjoin::KJoinIndex index(data.hierarchy, options, prepared.objects);
    const double build_seconds = build_timer.ElapsedSeconds();

    kjoin::WallTimer query_timer;
    int64_t total_candidates = 0;
    int64_t total_hits = 0;
    for (int64_t q = 0; q < *num_queries; ++q) {
      const kjoin::Object& query = prepared.objects[(q * 131) % prepared.objects.size()];
      total_hits += static_cast<int64_t>(index.Search(query).size());
      total_candidates += index.last_candidates();
    }
    const double seconds = query_timer.ElapsedSeconds();
    PrintRow({Fmt(tau, 2), Fmt(build_seconds, 2),
              Fmt(*num_queries / std::max(seconds, 1e-9), 0),
              Fmt(static_cast<double>(total_candidates) / *num_queries, 1),
              Fmt(static_cast<double>(total_hits) / *num_queries, 2)},
             12);
  }
  return 0;
}
