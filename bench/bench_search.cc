// Extension bench (not a paper figure): KJoinIndex similarity-search
// throughput vs threshold, plus the serving stack — snapshot-load vs
// text-parse+rebuild cold start, concurrent SearchService QPS with
// latency percentiles, the durable write path (acked insert latency with
// WAL fsync, delta-publish bytes vs a full postings copy, compaction
// pauses), and search throughput as a function of delta-chain depth
// against a compacted twin, the sharded scatter-gather path, and the
// network front end (the same router behind a loopback KJNP socket at
// 1/8/64 connections vs in-process, answers bit-identical). With --out
// the serving sections are written as a JSON report that
// scripts/run_bench.sh merges into the PR bench file
// (scripts/compare_bench.py tracks the speedup, per-client QPS, delta
// publish bytes, per-depth QPS + identity flags, and the network rows'
// qps_vs_inprocess floor).
//
//   ./bench_search [--n 20000] [--queries 2000]
//                  [--serve_n 4000] [--serve_queries 240] [--out serving.json]

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/kjoin_index.h"
#include "data/dataset_io.h"
#include "hierarchy/hierarchy_io.h"
#include "net/client.h"
#include "net/server.h"
#include "serve/index_manager.h"
#include "serve/search_service.h"
#include "serve/shard_router.h"
#include "serve/snapshot.h"

namespace {

using kjoin::bench::Fmt;
using kjoin::bench::PrintRow;

std::string JsonBool(bool b) { return b ? "true" : "false"; }

// Sample-exact nearest-rank percentile, shared with the metrics export
// (common/metrics.h).
using kjoin::PercentileOfSorted;

struct ConcurrentRow {
  int clients = 0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  bool results_identical = false;
};

struct DeltaRow {
  int depth = 0;
  double delta_qps = 0.0;
  double flat_qps = 0.0;
  double overhead_pct = 0.0;
  bool results_identical = false;
};

int64_t PostingEntryBytes(const kjoin::KJoinIndex& index) {
  return index.posting_entries() * static_cast<int64_t>(sizeof(int32_t));
}

}  // namespace

int main(int argc, char** argv) {
  kjoin::FlagSet flags("bench_search");
  int64_t* n = flags.Int("n", 20000, "indexed records (threshold sweep)");
  int64_t* num_queries = flags.Int("queries", 2000, "queries to run (threshold sweep)");
  int64_t* serve_n = flags.Int("serve_n", 4000, "indexed records (serving sections)");
  int64_t* serve_queries = flags.Int("serve_queries", 240, "queries per client count");
  std::string* out = flags.String("out", "", "write the serving sections as JSON here");
  if (!flags.Parse(argc, argv)) return 1;

  const kjoin::BenchmarkData data = kjoin::MakePoiBenchmark(*n);
  const kjoin::PreparedObjects prepared =
      kjoin::BuildObjects(data.hierarchy, data.dataset, /*multi_mapping=*/false);

  kjoin::bench::PrintHeader("Similarity search (POI, n=" + std::to_string(*n) + ", " +
                            std::to_string(*num_queries) + " queries)");
  PrintRow({"tau", "build-s", "qps", "avg-cand", "avg-hits"}, 12);
  for (double tau : {0.6, 0.7, 0.8, 0.9}) {
    kjoin::KJoinOptions options;
    options.delta = 0.8;
    options.tau = tau;
    kjoin::WallTimer build_timer;
    const kjoin::KJoinIndex index(data.hierarchy, options, prepared.objects);
    const double build_seconds = build_timer.ElapsedSeconds();

    kjoin::WallTimer query_timer;
    int64_t total_candidates = 0;
    int64_t total_hits = 0;
    for (int64_t q = 0; q < *num_queries; ++q) {
      const kjoin::Object& query = prepared.objects[(q * 131) % prepared.objects.size()];
      total_hits += static_cast<int64_t>(index.Search(query).size());
      total_candidates += index.last_candidates();
    }
    const double seconds = query_timer.ElapsedSeconds();
    PrintRow({Fmt(tau, 2), Fmt(build_seconds, 2),
              Fmt(*num_queries / std::max(seconds, 1e-9), 0),
              Fmt(static_cast<double>(total_candidates) / *num_queries, 1),
              Fmt(static_cast<double>(total_hits) / *num_queries, 2)},
             12);
  }

  // ---- serving: cold start, snapshot-load vs text-parse+rebuild --------
  // Both paths start from the serialized artifacts a server would ship:
  // the text hierarchy/dataset files versus one binary snapshot.
  kjoin::bench::PrintHeader("Serving cold start (n=" + std::to_string(*serve_n) + ")");
  const kjoin::BenchmarkData serve_data = kjoin::MakePoiBenchmark(*serve_n, /*seed=*/51);
  const std::string tree_text = kjoin::SerializeHierarchy(serve_data.hierarchy);
  const std::string data_text = kjoin::SerializeDataset(serve_data.dataset);
  kjoin::KJoinOptions serve_options;
  serve_options.delta = 0.8;
  serve_options.tau = 0.6;
  serve_options.plus_mode = true;

  kjoin::WallTimer rebuild_timer;
  auto parsed_tree = kjoin::ParseHierarchy(tree_text, "bench");
  auto parsed_data = kjoin::ParseDataset(data_text, "bench");
  if (!parsed_tree.ok() || !parsed_data.ok()) {
    std::fprintf(stderr, "cold-start parse failed\n");
    return 1;
  }
  const kjoin::PreparedObjects rebuilt =
      kjoin::BuildObjects(*parsed_tree, *parsed_data, /*multi_mapping=*/true, 0.8);
  const kjoin::KJoinIndex rebuilt_index(*parsed_tree, serve_options, rebuilt.objects);
  const double rebuild_seconds = rebuild_timer.ElapsedSeconds();

  const std::string snapshot_path = "/tmp/bench_search_serving.snap";
  kjoin::serve::SnapshotInput input;
  input.index = &rebuilt_index;
  input.tokens = rebuilt.builder->TokenTable();
  input.synonyms = parsed_data->synonyms;
  if (!kjoin::serve::SaveIndexSnapshot(input, snapshot_path).ok()) {
    std::fprintf(stderr, "snapshot save failed\n");
    return 1;
  }
  kjoin::WallTimer load_timer;
  auto loaded = kjoin::serve::LoadIndexSnapshot(snapshot_path);
  const double load_seconds = load_timer.ElapsedSeconds();
  if (!loaded.ok()) {
    std::fprintf(stderr, "snapshot load failed: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  const uint64_t snapshot_bytes = loaded->file_bytes;
  const double snapshot_speedup = rebuild_seconds / std::max(load_seconds, 1e-9);
  PrintRow({"path", "seconds"}, 24);
  PrintRow({"text-parse+rebuild", Fmt(rebuild_seconds, 3)}, 24);
  PrintRow({"snapshot-load", Fmt(load_seconds, 3)}, 24);
  std::printf("snapshot: %llu bytes, load speedup %.1fx\n",
              static_cast<unsigned long long>(snapshot_bytes), snapshot_speedup);

  // ---- serving: concurrent QPS over the loaded snapshot ----------------
  kjoin::bench::PrintHeader("Concurrent SearchService QPS (" +
                            std::to_string(*serve_queries) + " queries per client count)");
  kjoin::serve::QueryPipeline pipeline = kjoin::serve::MakeQueryPipeline(*loaded);
  kjoin::ThreadPool pool(2);
  kjoin::serve::IndexManager manager(std::move(*loaded), &pool);
  kjoin::serve::SearchService service(&manager, &pool);

  std::vector<kjoin::serve::QueryRequest> requests(*serve_queries);
  for (int64_t q = 0; q < *serve_queries; ++q) {
    std::vector<std::string> tokens =
        serve_data.dataset.records[(q * 97) % *serve_n].tokens;
    if (tokens.size() > 1) tokens.pop_back();
    requests[q].query = pipeline.builder->Build(-1, tokens);
    requests[q].top_k = 3;
  }
  // Serial baseline: concurrency must never change answers.
  std::vector<std::vector<kjoin::SearchHit>> baseline(requests.size());
  for (size_t q = 0; q < requests.size(); ++q) baseline[q] = service.Search(requests[q]).hits;

  PrintRow({"clients", "qps", "p50-ms", "p99-ms", "identical"}, 12);
  std::vector<ConcurrentRow> concurrent_rows;
  for (int clients : {1, 2, 8}) {
    std::vector<std::vector<double>> latencies(clients);
    std::atomic<int> mismatches{0};
    kjoin::WallTimer wall;
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        latencies[c].reserve(requests.size() / clients + 1);
        for (size_t q = c; q < requests.size(); q += clients) {
          const kjoin::serve::QueryResponse response = service.Search(requests[q]);
          latencies[c].push_back(response.seconds);
          if (!response.status.ok() || response.hits != baseline[q]) mismatches.fetch_add(1);
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    const double seconds = wall.ElapsedSeconds();

    std::vector<double> all;
    for (const auto& per_client : latencies) all.insert(all.end(), per_client.begin(), per_client.end());
    std::sort(all.begin(), all.end());
    ConcurrentRow row;
    row.clients = clients;
    row.qps = static_cast<double>(all.size()) / std::max(seconds, 1e-9);
    row.p50_ms = PercentileOfSorted(all, 0.50) * 1e3;
    row.p99_ms = PercentileOfSorted(all, 0.99) * 1e3;
    row.results_identical = mismatches.load() == 0;
    concurrent_rows.push_back(row);
    PrintRow({std::to_string(clients), Fmt(row.qps, 0), Fmt(row.p50_ms, 3), Fmt(row.p99_ms, 3),
              JsonBool(row.results_identical)},
             12);
  }
  std::remove(snapshot_path.c_str());

  // ---- serving: adaptive admission + health tracking overhead ----------
  // A/B over the same manager and queries: a service with the adaptive
  // controller off and no metrics vs one with the controller, its
  // metrics, and a health poll per rep. Reps alternate sides so drift
  // (caches, frequency scaling) lands on both; the overhead must stay
  // under 1% at steady state (compare_bench.py gates it).
  kjoin::bench::PrintHeader("Adaptive admission overhead (alternating A/B reps)");
  kjoin::serve::SearchServiceOptions static_options;
  static_options.adaptive = false;
  static_options.max_in_flight = 64;
  kjoin::serve::SearchService static_service(&manager, &pool, static_options);
  kjoin::MetricsRegistry admission_metrics;
  kjoin::serve::SearchServiceOptions adaptive_options;
  adaptive_options.max_in_flight = 64;
  kjoin::serve::SearchService adaptive_service(&manager, &pool, adaptive_options,
                                               &admission_metrics);
  constexpr int kAdmissionReps = 8;
  double static_seconds = 0.0;
  double adaptive_seconds = 0.0;
  for (int rep = 0; rep < kAdmissionReps; ++rep) {
    for (const int side : {0, 1}) {
      kjoin::serve::SearchService& side_service =
          side == 0 ? static_service : adaptive_service;
      kjoin::WallTimer timer;
      if (side == 1) (void)manager.HealthSnapshot();  // the monitoring poll
      for (const kjoin::serve::QueryRequest& request : requests) {
        if (!side_service.Search(request).status.ok()) {
          std::fprintf(stderr, "query failed in admission bench\n");
          return 1;
        }
      }
      (side == 0 ? static_seconds : adaptive_seconds) += timer.ElapsedSeconds();
    }
  }
  const double admission_queries =
      static_cast<double>(kAdmissionReps) * static_cast<double>(requests.size());
  const double static_qps = admission_queries / std::max(static_seconds, 1e-9);
  const double adaptive_qps = admission_queries / std::max(adaptive_seconds, 1e-9);
  const double admission_overhead_pct = (static_qps / std::max(adaptive_qps, 1e-9) - 1.0) * 100.0;
  PrintRow({"service", "qps"}, 24);
  PrintRow({"static cap, no metrics", Fmt(static_qps, 0)}, 24);
  PrintRow({"adaptive + health", Fmt(adaptive_qps, 0)}, 24);
  std::printf("adaptive admission overhead: %.2f%% (effective cap still %lld/%d)\n",
              admission_overhead_pct,
              static_cast<long long>(adaptive_service.effective_cap()),
              adaptive_options.max_in_flight);

  // ---- serving: durable write path (WAL fsync on the ack path) ---------
  // One shared base stack for the write-path and delta-depth sections.
  kjoin::bench::PrintHeader("Durable write path (WAL fsync per acked batch)");
  kjoin::BenchmarkData wp_data = kjoin::MakePoiBenchmark(*serve_n, /*seed=*/51);
  auto wp_hierarchy = std::make_shared<const kjoin::Hierarchy>(std::move(wp_data.hierarchy));
  const kjoin::PreparedObjects wp_prepared =
      kjoin::BuildObjects(*wp_hierarchy, wp_data.dataset, /*multi_mapping=*/true, 0.8);
  constexpr int kWriteBatches = 64;
  constexpr int kObjectsPerBatch = 8;
  auto make_write_batch = [&](int b) {
    std::vector<kjoin::Object> batch;
    batch.reserve(kObjectsPerBatch);
    for (int i = 0; i < kObjectsPerBatch; ++i) {
      const int64_t id = b * kObjectsPerBatch + i;
      batch.push_back(wp_prepared.builder->Build(static_cast<int32_t>(*serve_n + id),
                                                 wp_data.dataset.records[id % *serve_n].tokens));
    }
    return batch;
  };
  // Writers run inline (no pool): the acked latency includes the WAL
  // append + fsync AND the epoch publish, i.e. the full ack path. The
  // first run never compacts, isolating the delta-publish cost; the
  // second run uses the default compaction threshold so the periodic
  // fold shows up in its tail latency.
  auto run_write_path = [&](kjoin::serve::IndexManagerOptions manager_options,
                            const std::string& wal_path, kjoin::MetricsRegistry* registry,
                            std::vector<double>* out_ms) {
    auto manager = std::make_unique<kjoin::serve::IndexManager>(
        wp_hierarchy, serve_options, wp_prepared.objects, wp_prepared.builder->TokenTable(),
        wp_data.dataset.synonyms, /*pool=*/nullptr, registry, manager_options);
    std::remove(wal_path.c_str());
    if (!manager->AttachWal(wal_path).ok()) {
      std::fprintf(stderr, "WAL attach failed: %s\n", wal_path.c_str());
      std::exit(1);
    }
    for (int b = 0; b < kWriteBatches; ++b) {
      kjoin::WallTimer acked;
      if (!manager->InsertBatch(make_write_batch(b)).ok()) {
        std::fprintf(stderr, "insert rejected in write-path bench\n");
        std::exit(1);
      }
      out_ms->push_back(acked.ElapsedSeconds() * 1e3);
    }
    manager->Flush();
    std::sort(out_ms->begin(), out_ms->end());
    return manager;
  };

  kjoin::serve::IndexManagerOptions no_compaction;
  no_compaction.max_delta_layers = 1 << 20;
  kjoin::MetricsRegistry delta_metrics;
  std::vector<double> delta_acked_ms;
  auto delta_writer =
      run_write_path(no_compaction, "/tmp/bench_search_delta.wal", &delta_metrics, &delta_acked_ms);
  kjoin::MetricsRegistry compact_metrics;
  std::vector<double> compact_acked_ms;
  auto compact_writer =
      run_write_path({}, "/tmp/bench_search_compact.wal", &compact_metrics, &compact_acked_ms);

  const int64_t base_postings_bytes = [&] {
    const kjoin::KJoinIndex base(*wp_hierarchy, serve_options, wp_prepared.objects);
    return PostingEntryBytes(base);
  }();
  const int64_t delta_publishes = delta_metrics.counter("manager.delta_publishes")->value();
  const double delta_publish_bytes_avg =
      static_cast<double>(delta_metrics.counter("manager.rebuild_bytes")->value()) /
      std::max<int64_t>(delta_publishes, 1);
  const double full_copy_ratio = delta_publish_bytes_avg / std::max<int64_t>(base_postings_bytes, 1);
  const int64_t compactions = compact_metrics.counter("manager.compactions")->value();
  const double compaction_pause_ms_avg =
      compact_metrics.histogram("manager.compaction_seconds")->sum() * 1e3 /
      std::max<int64_t>(compactions, 1);
  const double acked_p50_ms = PercentileOfSorted(delta_acked_ms, 0.50);
  const double acked_p99_ms = PercentileOfSorted(delta_acked_ms, 0.99);
  const double compacted_p99_ms = PercentileOfSorted(compact_acked_ms, 0.99);
  const int64_t wal_bytes = delta_writer->wal_size_bytes();

  PrintRow({"metric", "value"}, 28);
  PrintRow({"acked-p50-ms", Fmt(acked_p50_ms, 3)}, 28);
  PrintRow({"acked-p99-ms", Fmt(acked_p99_ms, 3)}, 28);
  PrintRow({"acked-p99-ms (compacting)", Fmt(compacted_p99_ms, 3)}, 28);
  PrintRow({"delta-publish-bytes", Fmt(delta_publish_bytes_avg, 0)}, 28);
  PrintRow({"base-postings-bytes", Fmt(static_cast<double>(base_postings_bytes), 0)}, 28);
  PrintRow({"compaction-pause-ms", Fmt(compaction_pause_ms_avg, 3)}, 28);
  std::printf("%lld acked batches, %lld WAL bytes; a delta publish writes %.2f%% of a "
              "full postings copy (%lld compactions in the compacting run)\n",
              static_cast<long long>(kWriteBatches), static_cast<long long>(wal_bytes),
              full_copy_ratio * 100.0, static_cast<long long>(compactions));
  delta_writer.reset();
  compact_writer.reset();
  std::remove("/tmp/bench_search_delta.wal");
  std::remove("/tmp/bench_search_compact.wal");

  // ---- serving: search QPS vs delta-chain depth ------------------------
  // A growing delta chain vs a twin that compacts after every publish:
  // same objects, same queries — the QPS gap is the chain's merge cost
  // and the identity flag proves depth never changes answers.
  kjoin::bench::PrintHeader("Search QPS vs delta depth (vs compacted twin)");
  kjoin::serve::IndexManagerOptions always_compact;
  always_compact.max_delta_layers = 0;
  kjoin::serve::IndexManager chained(wp_hierarchy, serve_options, wp_prepared.objects,
                                     wp_prepared.builder->TokenTable(),
                                     wp_data.dataset.synonyms, /*pool=*/nullptr, nullptr,
                                     no_compaction);
  kjoin::serve::IndexManager flattened(wp_hierarchy, serve_options, wp_prepared.objects,
                                       wp_prepared.builder->TokenTable(),
                                       wp_data.dataset.synonyms, /*pool=*/nullptr, nullptr,
                                       always_compact);
  const int64_t depth_reps = std::max<int64_t>(1, 960 / static_cast<int64_t>(requests.size()));
  auto measure_qps = [&](kjoin::serve::IndexManager& manager) {
    const auto epoch = manager.Acquire();
    kjoin::WallTimer timer;
    int64_t measured = 0;
    for (int64_t rep = 0; rep < depth_reps; ++rep) {
      for (const kjoin::serve::QueryRequest& request : requests) {
        measured += static_cast<int64_t>(epoch->index->Search(request.query).size());
      }
    }
    (void)measured;
    return static_cast<double>(depth_reps * requests.size()) /
           std::max(timer.ElapsedSeconds(), 1e-9);
  };
  auto answers_identical = [&] {
    const auto chained_epoch = chained.Acquire();
    const auto flat_epoch = flattened.Acquire();
    for (const kjoin::serve::QueryRequest& request : requests) {
      if (chained_epoch->index->Search(request.query) !=
          flat_epoch->index->Search(request.query)) {
        return false;
      }
    }
    return true;
  };

  PrintRow({"depth", "delta-qps", "flat-qps", "overhead-%", "identical"}, 12);
  std::vector<DeltaRow> delta_rows;
  int inserted_batches = 0;
  for (int depth : {0, 1, 4, 16}) {
    for (; inserted_batches < depth; ++inserted_batches) {
      std::vector<kjoin::Object> batch = make_write_batch(inserted_batches);
      if (!chained.InsertBatch(batch).ok() ||
          !flattened.InsertBatch(std::move(batch)).ok()) {
        std::fprintf(stderr, "insert rejected in delta-depth bench\n");
        return 1;
      }
    }
    chained.Flush();
    flattened.Flush();
    DeltaRow row;
    row.depth = chained.Acquire()->index->delta_depth();
    row.delta_qps = measure_qps(chained);
    row.flat_qps = measure_qps(flattened);
    row.overhead_pct = (row.flat_qps / std::max(row.delta_qps, 1e-9) - 1.0) * 100.0;
    row.results_identical = answers_identical();
    delta_rows.push_back(row);
    PrintRow({std::to_string(row.depth), Fmt(row.delta_qps, 0), Fmt(row.flat_qps, 0),
              Fmt(row.overhead_pct, 1), JsonBool(row.results_identical)},
             12);
  }

  // ---- serving: sharded scatter-gather top-k ---------------------------
  // Shard-per-core serving vs the single-index SearchService path, same
  // collection, same top-k queries. QPS and latency at every shard count
  // x client count, with an identity check against the single-index
  // answers (the determinism contract), the progressive-bound prune
  // counters, and a batching A/B (sync Search vs the Submit dispatcher
  // path) at one client, where batching must be ~free.
  //
  // The workload is a top-1 lookup at a permissive floor (tau 0.4) — the
  // regime progressive pruning targets: the k-th best similarity sits
  // well above the floor, so the first shard to find the best match
  // collapses every later shard's prefix and lets the length screen drop
  // most of their verifications. As k grows (or the floor rises toward
  // the k-th best) the bound converges to the floor and the sharded path
  // converges to 8x the fixed per-probe cost; docs/serving.md discusses
  // the tradeoff.
  kjoin::bench::PrintHeader("Sharded scatter-gather serving (top-1 lookup, tau 0.4)");
  kjoin::KJoinOptions shard_serve_options;
  shard_serve_options.delta = 0.8;
  shard_serve_options.tau = 0.4;
  shard_serve_options.plus_mode = true;
  std::vector<kjoin::serve::QueryRequest> shard_requests(*serve_queries);
  for (int64_t q = 0; q < *serve_queries; ++q) {
    std::vector<std::string> tokens = wp_data.dataset.records[(q * 97) % *serve_n].tokens;
    if (tokens.size() > 1) tokens.pop_back();
    shard_requests[q].query = wp_prepared.builder->Build(-1, tokens);
    shard_requests[q].top_k = 1;
  }
  kjoin::ThreadPool shard_pool(2);
  kjoin::serve::IndexManager single_manager(
      wp_hierarchy, shard_serve_options, wp_prepared.objects,
      wp_prepared.builder->TokenTable(), wp_data.dataset.synonyms, &shard_pool);
  kjoin::serve::SearchService single_service(&single_manager, &shard_pool);
  std::vector<std::vector<kjoin::SearchHit>> shard_baseline(shard_requests.size());
  for (size_t q = 0; q < shard_requests.size(); ++q) {
    shard_baseline[q] = single_service.Search(shard_requests[q]).hits;
  }

  struct ShardRow {
    int shards = 0;
    int clients = 0;
    double qps = 0.0;
    double p50_ms = 0.0;
    double p99_ms = 0.0;
    bool results_identical = false;
  };
  auto run_clients = [&](const std::function<kjoin::serve::QueryResponse(
                             const kjoin::serve::QueryRequest&)>& search,
                         int clients, ShardRow* row, kjoin::SearchStats* prune_totals) {
    std::vector<std::vector<double>> latencies(clients);
    std::atomic<int> mismatches{0};
    std::atomic<int64_t> tightenings{0};
    std::atomic<int64_t> pruned_lists{0};
    std::atomic<int64_t> pruned_entries{0};
    std::atomic<int64_t> pruned_blocks{0};
    std::atomic<int64_t> raised_verifies{0};
    std::atomic<int64_t> skipped_verifies{0};
    kjoin::WallTimer wall;
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        latencies[c].reserve(shard_requests.size() / clients + 1);
        for (size_t q = c; q < shard_requests.size(); q += clients) {
          const kjoin::serve::QueryResponse response = search(shard_requests[q]);
          latencies[c].push_back(response.seconds);
          if (!response.status.ok() || response.hits != shard_baseline[q]) {
            mismatches.fetch_add(1);
          }
          tightenings.fetch_add(response.stats.bound_tightenings);
          pruned_lists.fetch_add(response.stats.bound_pruned_lists);
          pruned_entries.fetch_add(response.stats.bound_pruned_entries);
          pruned_blocks.fetch_add(response.stats.bound_pruned_blocks);
          raised_verifies.fetch_add(response.stats.bound_raised_verifies);
          skipped_verifies.fetch_add(response.stats.bound_skipped_verifies);
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    const double seconds = wall.ElapsedSeconds();
    std::vector<double> all;
    for (const auto& per_client : latencies) {
      all.insert(all.end(), per_client.begin(), per_client.end());
    }
    std::sort(all.begin(), all.end());
    row->clients = clients;
    row->qps = static_cast<double>(all.size()) / std::max(seconds, 1e-9);
    row->p50_ms = PercentileOfSorted(all, 0.50) * 1e3;
    row->p99_ms = PercentileOfSorted(all, 0.99) * 1e3;
    row->results_identical = mismatches.load() == 0;
    if (prune_totals != nullptr) {
      prune_totals->bound_tightenings += tightenings.load();
      prune_totals->bound_pruned_lists += pruned_lists.load();
      prune_totals->bound_pruned_entries += pruned_entries.load();
      prune_totals->bound_pruned_blocks += pruned_blocks.load();
      prune_totals->bound_raised_verifies += raised_verifies.load();
      prune_totals->bound_skipped_verifies += skipped_verifies.load();
    }
  };

  PrintRow({"shards", "clients", "qps", "p50-ms", "p99-ms", "identical"}, 12);
  std::vector<ShardRow> baseline_rows;
  for (int clients : {1, 8}) {
    ShardRow row;
    row.shards = 0;  // the single-index path
    run_clients([&](const kjoin::serve::QueryRequest& r) { return single_service.Search(r); },
                clients, &row, nullptr);
    baseline_rows.push_back(row);
    PrintRow({"single", std::to_string(clients), Fmt(row.qps, 0), Fmt(row.p50_ms, 3),
              Fmt(row.p99_ms, 3), JsonBool(row.results_identical)},
             12);
  }

  std::vector<ShardRow> shard_rows;
  kjoin::SearchStats prune_totals;
  double sharded_submit_qps = 0.0;
  double sharded_sync_qps = 0.0;
  for (int shards : {1, 2, 4, 8}) {
    kjoin::serve::ShardedIndexManager sharded(
        wp_hierarchy, shard_serve_options, wp_prepared.objects,
        wp_prepared.builder->TokenTable(), wp_data.dataset.synonyms, shards, &shard_pool);
    std::vector<std::unique_ptr<kjoin::serve::LocalShard>> backends;
    std::vector<kjoin::serve::ShardBackend*> backend_ptrs;
    for (int s = 0; s < shards; ++s) {
      backends.push_back(std::make_unique<kjoin::serve::LocalShard>(&sharded, s));
      backend_ptrs.push_back(backends.back().get());
    }
    kjoin::serve::ShardRouterOptions router_options;
    // SearchBatch in the batching A/B enqueues the full query set at
    // once; the default cap would shed it.
    router_options.admission.max_in_flight = 4096;
    kjoin::serve::ShardRouter router(backend_ptrs, &shard_pool, router_options);
    for (int clients : {1, 8}) {
      ShardRow row;
      row.shards = shards;
      run_clients([&](const kjoin::serve::QueryRequest& r) { return router.Search(r); },
                  clients, &row, &prune_totals);
      shard_rows.push_back(row);
      PrintRow({std::to_string(shards), std::to_string(clients), Fmt(row.qps, 0),
                Fmt(row.p50_ms, 3), Fmt(row.p99_ms, 3), JsonBool(row.results_identical)},
               12);
    }
    if (shards == 8) {
      // Batching A/B at one client (alternating reps): the Submit
      // dispatcher path vs sync Search — the handoff + coalescing
      // machinery must cost <= 5% when there is nothing to coalesce.
      constexpr int kBatchReps = 4;
      double sync_seconds = 0.0;
      double submit_seconds = 0.0;
      for (int rep = 0; rep < kBatchReps; ++rep) {
        for (const int side : {0, 1}) {
          kjoin::WallTimer timer;
          if (side == 0) {
            for (const kjoin::serve::QueryRequest& request : shard_requests) {
              if (!router.Search(request).status.ok()) {
                std::fprintf(stderr, "query failed in batching bench\n");
                return 1;
              }
            }
            sync_seconds += timer.ElapsedSeconds();
          } else {
            // Ping-pong Submit: one client never batches, isolating the
            // dispatcher overhead.
            const std::vector<kjoin::serve::QueryResponse> responses =
                router.SearchBatch(shard_requests);
            for (const kjoin::serve::QueryResponse& response : responses) {
              if (!response.status.ok()) {
                std::fprintf(stderr, "submit failed in batching bench\n");
                return 1;
              }
            }
            submit_seconds += timer.ElapsedSeconds();
          }
        }
      }
      const double batch_queries =
          static_cast<double>(kBatchReps) * static_cast<double>(shard_requests.size());
      sharded_sync_qps = batch_queries / std::max(sync_seconds, 1e-9);
      sharded_submit_qps = batch_queries / std::max(submit_seconds, 1e-9);
    }
  }
  const double single_8c_qps = baseline_rows.back().qps;
  const ShardRow& sharded_8x8 = shard_rows.back();
  const double sharded_speedup = sharded_8x8.qps / std::max(single_8c_qps, 1e-9);
  const double batching_overhead_pct =
      (sharded_sync_qps / std::max(sharded_submit_qps, 1e-9) - 1.0) * 100.0;
  std::printf("8 shards / 8 clients: %.2fx the single-index path; bound tightened %lld "
              "times, pruned %lld posting entries / %lld blocks, length-screened %lld "
              "verifications across the runs\n",
              sharded_speedup, static_cast<long long>(prune_totals.bound_tightenings),
              static_cast<long long>(prune_totals.bound_pruned_entries),
              static_cast<long long>(prune_totals.bound_pruned_blocks),
              static_cast<long long>(prune_totals.bound_skipped_verifies));
  std::printf("batching (8 shards, 1 client): sync %.0f qps, submit %.0f qps, "
              "overhead %.2f%%\n",
              sharded_sync_qps, sharded_submit_qps, batching_overhead_pct);

  // ---- serving: network front end (KJNP over loopback) -----------------
  // The same 2-shard collection behind a KJoinServer on a loopback
  // socket versus the identical in-process router. Queries travel as
  // token strings and come back as bit-exact f64 similarities, so every
  // network row must match the in-process answers exactly;
  // compare_bench.py gates qps_vs_inprocess >= 0.5 at 8 connections and
  // fails on any identity flip.
  kjoin::bench::PrintHeader("Network serving (KJNP loopback, 2 shards, top-3)");
  struct NetRow {
    int connections = 0;
    double qps = 0.0;
    double p50_ms = 0.0;
    double p99_ms = 0.0;
    double qps_vs_inprocess = 0.0;
    bool results_identical = false;
  };
  std::vector<std::vector<std::string>> net_tokens(*serve_queries);
  for (int64_t q = 0; q < *serve_queries; ++q) {
    std::vector<std::string> tokens = wp_data.dataset.records[(q * 97) % *serve_n].tokens;
    if (tokens.size() > 1) tokens.pop_back();
    net_tokens[q] = std::move(tokens);
  }
  kjoin::MetricsRegistry net_metrics;
  kjoin::ThreadPool net_pool(2);
  kjoin::serve::ShardedIndexManager net_sharded(
      wp_hierarchy, serve_options, wp_prepared.objects, wp_prepared.builder->TokenTable(),
      wp_data.dataset.synonyms, /*num_shards=*/2, &net_pool, &net_metrics);
  std::vector<std::unique_ptr<kjoin::serve::LocalShard>> net_backends;
  std::vector<kjoin::serve::ShardBackend*> net_backend_ptrs;
  for (int s = 0; s < 2; ++s) {
    net_backends.push_back(std::make_unique<kjoin::serve::LocalShard>(&net_sharded, s));
    net_backend_ptrs.push_back(net_backends.back().get());
  }
  kjoin::serve::ShardRouterOptions net_router_options;
  net_router_options.admission.max_in_flight = 4096;  // 64 connections must not shed
  kjoin::serve::ShardRouter net_router(net_backend_ptrs, &net_pool, net_router_options,
                                       &net_metrics);

  // Query objects and the reference answers, built BEFORE the server
  // starts — once it runs, the builder belongs to it.
  std::vector<kjoin::serve::QueryRequest> net_requests(*serve_queries);
  for (int64_t q = 0; q < *serve_queries; ++q) {
    net_requests[q].query = wp_prepared.builder->Build(-1, net_tokens[q]);
    net_requests[q].top_k = 3;
  }
  std::vector<std::vector<kjoin::SearchHit>> net_baseline(net_requests.size());
  for (size_t q = 0; q < net_requests.size(); ++q) {
    net_baseline[q] = net_router.Search(net_requests[q]).hits;
  }

  // In-process reference throughput: 8 threads doing exactly the work
  // one network request costs — intern the token strings into a query
  // object, then run the router. The builder is not thread-safe, so the
  // build step serializes on a mutex, just like the server's own
  // builder lock; leaving the build out would compare the network
  // tokens-in/hits-out contract against a cheaper job.
  double inprocess_qps = 0.0;
  double inprocess_p50_ms = 0.0;
  double inprocess_p99_ms = 0.0;
  {
    constexpr int kInProcessThreads = 8;
    std::mutex build_mu;
    std::vector<std::vector<double>> latencies(kInProcessThreads);
    kjoin::WallTimer wall;
    std::vector<std::thread> threads;
    threads.reserve(kInProcessThreads);
    for (int c = 0; c < kInProcessThreads; ++c) {
      threads.emplace_back([&, c] {
        for (size_t q = c; q < net_tokens.size(); q += kInProcessThreads) {
          kjoin::WallTimer one;
          kjoin::serve::QueryRequest request;
          {
            std::lock_guard<std::mutex> lock(build_mu);
            request.query = wp_prepared.builder->Build(-1, net_tokens[q]);
          }
          request.top_k = 3;
          (void)net_router.Search(request);
          latencies[c].push_back(one.ElapsedSeconds());
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    const double seconds = wall.ElapsedSeconds();
    std::vector<double> all;
    for (const auto& per_client : latencies) {
      all.insert(all.end(), per_client.begin(), per_client.end());
    }
    std::sort(all.begin(), all.end());
    inprocess_qps = static_cast<double>(all.size()) / std::max(seconds, 1e-9);
    inprocess_p50_ms = PercentileOfSorted(all, 0.50) * 1e3;
    inprocess_p99_ms = PercentileOfSorted(all, 0.99) * 1e3;
  }

  kjoin::net::ServerOptions net_server_options;
  net_server_options.num_loops = 2;
  kjoin::net::KJoinServer net_server(&net_router, &net_sharded, wp_prepared.builder.get(),
                                     &net_metrics, net_server_options);
  if (!net_server.Start().ok()) {
    std::fprintf(stderr, "network bench: server start failed\n");
    return 1;
  }
  PrintRow({"conns", "qps", "p50-ms", "p99-ms", "vs-inproc", "identical"}, 12);
  PrintRow({"in-proc", Fmt(inprocess_qps, 0), Fmt(inprocess_p50_ms, 3),
            Fmt(inprocess_p99_ms, 3), "1.000", "true"},
           12);
  std::vector<NetRow> net_rows;
  for (int connections : {1, 8, 64}) {
    std::vector<std::vector<double>> latencies(connections);
    std::atomic<int> mismatches{0};
    std::atomic<int> failures{0};
    kjoin::WallTimer wall;
    std::vector<std::thread> threads;
    threads.reserve(connections);
    for (int c = 0; c < connections; ++c) {
      threads.emplace_back([&, c] {
        kjoin::net::KJoinClient client;
        if (!client.Connect("127.0.0.1", net_server.port()).ok()) {
          failures.fetch_add(1);
          return;
        }
        for (size_t q = c; q < net_tokens.size(); q += connections) {
          kjoin::WallTimer one;
          kjoin::StatusOr<kjoin::net::NetResponse> got = client.TopK(net_tokens[q], 3);
          latencies[c].push_back(one.ElapsedSeconds());
          if (!got.ok() || got->code != 0) {
            failures.fetch_add(1);
            continue;
          }
          bool identical = got->hits.size() == net_baseline[q].size();
          for (size_t h = 0; identical && h < net_baseline[q].size(); ++h) {
            identical = got->hits[h].object_index == net_baseline[q][h].object_index &&
                        got->hits[h].similarity == net_baseline[q][h].similarity;
          }
          if (!identical) mismatches.fetch_add(1);
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    const double seconds = wall.ElapsedSeconds();
    std::vector<double> all;
    for (const auto& per_client : latencies) {
      all.insert(all.end(), per_client.begin(), per_client.end());
    }
    std::sort(all.begin(), all.end());
    NetRow row;
    row.connections = connections;
    row.qps = static_cast<double>(all.size()) / std::max(seconds, 1e-9);
    row.p50_ms = PercentileOfSorted(all, 0.50) * 1e3;
    row.p99_ms = PercentileOfSorted(all, 0.99) * 1e3;
    row.qps_vs_inprocess = row.qps / std::max(inprocess_qps, 1e-9);
    row.results_identical = mismatches.load() == 0 && failures.load() == 0;
    net_rows.push_back(row);
    PrintRow({std::to_string(connections), Fmt(row.qps, 0), Fmt(row.p50_ms, 3),
              Fmt(row.p99_ms, 3), Fmt(row.qps_vs_inprocess, 3),
              JsonBool(row.results_identical)},
             12);
  }
  net_server.Shutdown();
  std::printf("loopback at 8 connections: %.2fx the in-process router "
              "(%lld frames served, %lld backpressure stalls)\n",
              net_rows[1].qps_vs_inprocess,
              static_cast<long long>(net_metrics.counter("net.frames_written")->value()),
              static_cast<long long>(net_metrics.counter("net.backpressure_stalls")->value()));

  // ---- JSON report (serving sections only; run_bench.sh merges it) -----
  if (!out->empty()) {
    std::FILE* f = std::fopen(out->c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", out->c_str());
      return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f,
                 "  \"serving_cold_start\": {\"n\": %lld, \"rebuild_seconds\": %.4f, "
                 "\"load_seconds\": %.4f, \"snapshot_speedup\": %.2f, "
                 "\"snapshot_bytes\": %llu},\n",
                 static_cast<long long>(*serve_n), rebuild_seconds, load_seconds,
                 snapshot_speedup, static_cast<unsigned long long>(snapshot_bytes));
    std::fprintf(f, "  \"serving_qps\": [");
    for (size_t i = 0; i < concurrent_rows.size(); ++i) {
      const ConcurrentRow& row = concurrent_rows[i];
      std::fprintf(f,
                   "%s\n    {\"clients\": %d, \"qps\": %.1f, \"p50_ms\": %.3f, "
                   "\"p99_ms\": %.3f, \"results_identical\": %s}",
                   i == 0 ? "" : ",", row.clients, row.qps, row.p50_ms, row.p99_ms,
                   JsonBool(row.results_identical).c_str());
    }
    std::fprintf(f, "\n  ],\n");
    std::fprintf(f,
                 "  \"serving_admission\": {\"reps\": %d, \"queries_per_rep\": %zu, "
                 "\"static_qps\": %.1f, \"adaptive_qps\": %.1f, "
                 "\"overhead_pct\": %.3f},\n",
                 kAdmissionReps, requests.size(), static_qps, adaptive_qps,
                 admission_overhead_pct);
    std::fprintf(f,
                 "  \"serving_write_path\": {\"batches\": %d, \"objects_per_batch\": %d, "
                 "\"acked_p50_ms\": %.4f, \"acked_p99_ms\": %.4f, "
                 "\"compacted_p99_ms\": %.4f, \"wal_bytes\": %lld, "
                 "\"delta_publish_bytes_avg\": %.0f, \"base_postings_bytes\": %lld, "
                 "\"full_copy_ratio\": %.5f, \"compactions\": %lld, "
                 "\"compaction_pause_ms_avg\": %.4f},\n",
                 kWriteBatches, kObjectsPerBatch, acked_p50_ms, acked_p99_ms, compacted_p99_ms,
                 static_cast<long long>(wal_bytes), delta_publish_bytes_avg,
                 static_cast<long long>(base_postings_bytes), full_copy_ratio,
                 static_cast<long long>(compactions), compaction_pause_ms_avg);
    std::fprintf(f, "  \"serving_delta_search\": [");
    for (size_t i = 0; i < delta_rows.size(); ++i) {
      const DeltaRow& row = delta_rows[i];
      std::fprintf(f,
                   "%s\n    {\"depth\": %d, \"delta_qps\": %.1f, \"flat_qps\": %.1f, "
                   "\"overhead_pct\": %.2f, \"results_identical\": %s}",
                   i == 0 ? "" : ",", row.depth, row.delta_qps, row.flat_qps, row.overhead_pct,
                   JsonBool(row.results_identical).c_str());
    }
    std::fprintf(f, "\n  ],\n");
    std::fprintf(f, "  \"serving_sharded\": {\n    \"single_index\": [");
    for (size_t i = 0; i < baseline_rows.size(); ++i) {
      const ShardRow& row = baseline_rows[i];
      std::fprintf(f,
                   "%s\n      {\"clients\": %d, \"qps\": %.1f, \"p50_ms\": %.3f, "
                   "\"p99_ms\": %.3f, \"results_identical\": %s}",
                   i == 0 ? "" : ",", row.clients, row.qps, row.p50_ms, row.p99_ms,
                   JsonBool(row.results_identical).c_str());
    }
    std::fprintf(f, "\n    ],\n    \"sharded\": [");
    for (size_t i = 0; i < shard_rows.size(); ++i) {
      const ShardRow& row = shard_rows[i];
      const double vs_single =
          row.qps / std::max(row.clients == 1 ? baseline_rows.front().qps
                                              : baseline_rows.back().qps,
                             1e-9);
      std::fprintf(f,
                   "%s\n      {\"shards\": %d, \"clients\": %d, \"qps\": %.1f, "
                   "\"p50_ms\": %.3f, \"p99_ms\": %.3f, \"qps_vs_single\": %.3f, "
                   "\"results_identical\": %s}",
                   i == 0 ? "" : ",", row.shards, row.clients, row.qps, row.p50_ms, row.p99_ms,
                   vs_single, JsonBool(row.results_identical).c_str());
    }
    std::fprintf(f,
                 "\n    ],\n    \"speedup_8shard_8client\": %.3f,\n"
                 "    \"tau_prune\": {\"bound_tightenings\": %lld, "
                 "\"bound_pruned_lists\": %lld, \"bound_pruned_entries\": %lld, "
                 "\"bound_pruned_blocks\": %lld, \"bound_raised_verifies\": %lld, "
                 "\"bound_skipped_verifies\": %lld},\n"
                 "    \"batching\": {\"shards\": 8, \"clients\": 1, \"sync_qps\": %.1f, "
                 "\"submit_qps\": %.1f, \"overhead_pct\": %.3f}\n  },\n",
                 sharded_speedup, static_cast<long long>(prune_totals.bound_tightenings),
                 static_cast<long long>(prune_totals.bound_pruned_lists),
                 static_cast<long long>(prune_totals.bound_pruned_entries),
                 static_cast<long long>(prune_totals.bound_pruned_blocks),
                 static_cast<long long>(prune_totals.bound_raised_verifies),
                 static_cast<long long>(prune_totals.bound_skipped_verifies),
                 sharded_sync_qps, sharded_submit_qps, batching_overhead_pct);
    std::fprintf(f,
                 "  \"serving_network\": {\n    \"in_process\": {\"threads\": 8, "
                 "\"qps\": %.1f, \"p50_ms\": %.3f, \"p99_ms\": %.3f},\n    \"network\": [",
                 inprocess_qps, inprocess_p50_ms, inprocess_p99_ms);
    for (size_t i = 0; i < net_rows.size(); ++i) {
      const NetRow& row = net_rows[i];
      std::fprintf(f,
                   "%s\n      {\"connections\": %d, \"qps\": %.1f, \"p50_ms\": %.3f, "
                   "\"p99_ms\": %.3f, \"qps_vs_inprocess\": %.3f, "
                   "\"results_identical\": %s}",
                   i == 0 ? "" : ",", row.connections, row.qps, row.p50_ms, row.p99_ms,
                   row.qps_vs_inprocess, JsonBool(row.results_identical).c_str());
    }
    std::fprintf(f, "\n    ]\n  }\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out->c_str());
  }
  return 0;
}
