// Ablation: the design choices DESIGN.md calls out, each toggled in
// isolation on one POI workload —
//   * count pruning / weighted count pruning (paper §3.2, Lemmas 3-4)
//   * weighted vs plain path prefix (Definition 9 vs 8)
//   * adaptive bounds vs plain subgraph matching (§5.2)
//
//   ./bench_ablation_pruning [--n 10000] [--delta 0.8] [--tau 0.85]

#include "bench_util.h"
#include "common/flags.h"

namespace {

using kjoin::bench::Fmt;
using kjoin::bench::PrintRow;

void Run(const std::string& label, const kjoin::BenchmarkData& data,
         const kjoin::PreparedObjects& prepared, kjoin::KJoinOptions options) {
  const kjoin::JoinResult result =
      kjoin::bench::RunKJoin(data.hierarchy, prepared.objects, options);
  PrintRow({label, std::to_string(result.stats.candidates),
            std::to_string(result.stats.verify.pruned_by_count),
            std::to_string(result.stats.verify.pruned_by_weighted_count),
            std::to_string(result.stats.verify.hungarian_runs),
            Fmt(result.stats.verify_seconds, 3), Fmt(result.stats.total_seconds, 3),
            std::to_string(result.stats.results)},
           14);
}

}  // namespace

int main(int argc, char** argv) {
  kjoin::FlagSet flags("bench_ablation_pruning");
  int64_t* n = flags.Int("n", 10000, "records");
  double* delta = flags.Double("delta", 0.8, "element threshold");
  double* tau = flags.Double("tau", 0.85, "object threshold");
  if (!flags.Parse(argc, argv)) return 1;

  const kjoin::BenchmarkData data = kjoin::MakePoiBenchmark(*n);
  const kjoin::PreparedObjects prepared =
      kjoin::BuildObjects(data.hierarchy, data.dataset, false);

  kjoin::bench::PrintHeader("Ablation (POI, n=" + std::to_string(*n) + ", delta=" +
                            Fmt(*delta, 2) + ", tau=" + Fmt(*tau, 2) + ")");
  PrintRow({"config", "candidates", "count-pruned", "wcount-pruned", "hungarian",
            "verify-s", "total-s", "results"},
           14);

  kjoin::KJoinOptions base;
  base.delta = *delta;
  base.tau = *tau;

  Run("full", data, prepared, base);

  kjoin::KJoinOptions no_weighted_prefix = base;
  no_weighted_prefix.weighted_prefix = false;
  Run("plain-prefix", data, prepared, no_weighted_prefix);

  kjoin::KJoinOptions no_count = base;
  no_count.count_pruning = false;
  Run("no-count", data, prepared, no_count);

  kjoin::KJoinOptions no_weighted_count = base;
  no_weighted_count.weighted_count_pruning = false;
  Run("no-wcount", data, prepared, no_weighted_count);

  kjoin::KJoinOptions no_pruning = base;
  no_pruning.count_pruning = false;
  no_pruning.weighted_count_pruning = false;
  Run("no-pruning", data, prepared, no_pruning);

  kjoin::KJoinOptions subgraph = no_pruning;
  subgraph.verify_mode = kjoin::VerifyMode::kSubGraph;
  Run("subgraph", data, prepared, subgraph);

  kjoin::KJoinOptions basic = no_pruning;
  basic.verify_mode = kjoin::VerifyMode::kBasic;
  Run("basic", data, prepared, basic);

  std::printf("\nAll configurations return identical result counts; they differ only\n"
              "in how much verification work the bounds avoid.\n");
  return 0;
}
