// Table 2: knowledge-hierarchy shape statistics.
//
// The paper's hierarchy was crawled from Factual; ours is generated to the
// same published shape (DESIGN.md §3). This bench prints the generated
// stats next to the paper's row.
//
//   ./bench_table2_hierarchy [--seed 42]

#include "bench_util.h"
#include "common/flags.h"
#include "hierarchy/hierarchy_generator.h"

int main(int argc, char** argv) {
  kjoin::FlagSet flags("bench_table2_hierarchy");
  int64_t* seed = flags.Int("seed", 42, "generator seed");
  if (!flags.Parse(argc, argv)) return 1;

  kjoin::HierarchyGenParams params;
  params.seed = static_cast<uint64_t>(*seed);
  const kjoin::Hierarchy tree = kjoin::GenerateHierarchy(params);
  const kjoin::HierarchyStats stats = tree.ComputeStats();

  kjoin::bench::PrintHeader("Table 2: Knowledge Hierarchy");
  kjoin::bench::PrintRow({"", "#Nodes", "Height", "AvgFanout", "MaxFanout", "MinFanout"});
  kjoin::bench::PrintRow({"paper", "4222", "6", "7", "49", "1"});
  kjoin::bench::PrintRow({"ours", std::to_string(stats.num_nodes),
                          std::to_string(stats.height), kjoin::bench::Fmt(stats.avg_fanout, 1),
                          std::to_string(stats.max_fanout),
                          std::to_string(stats.min_fanout)});
  std::printf("\n(%lld leaves, average leaf depth %.2f)\n",
              static_cast<long long>(stats.num_leaves), stats.avg_leaf_depth);
  return 0;
}
