// Figure 14: scalability — total join time for K-Join and K-Join+ as the
// number of objects grows (POI at τ = 0.95, Tweet at τ = 0.85, δ = 0.8).
//
//   ./bench_fig14_scalability [--step 20000] [--steps 5]
//
// The paper sweeps 0.2M..1M; the defaults sweep 20k..100k so the full
// bench suite stays laptop-sized. Use --step 200000 to match the paper.

#include "bench_util.h"
#include "common/flags.h"

namespace {

using kjoin::bench::Fmt;
using kjoin::bench::PrintRow;

void RunDataset(const std::string& name, bool poi, double tau, int64_t step, int64_t steps) {
  kjoin::bench::PrintHeader("Figure 14: scalability (" + name + ", delta=0.8, tau=" +
                            Fmt(tau, 2) + ")");
  PrintRow({"#objects", "KJ-s", "KJ+-s", "KJ-results", "KJ+-results"}, 12);
  // Generate the largest dataset once; prefixes of it give the smaller
  // scales (the paper's "varying the number of objects").
  const int64_t max_n = step * steps;
  const kjoin::BenchmarkData data =
      poi ? kjoin::MakePoiBenchmark(max_n) : kjoin::MakeTweetBenchmark(max_n);
  const kjoin::PreparedObjects single =
      kjoin::BuildObjects(data.hierarchy, data.dataset, false, 0.8);
  const kjoin::PreparedObjects plus =
      kjoin::BuildObjects(data.hierarchy, data.dataset, true, 0.8);

  for (int64_t i = 1; i <= steps; ++i) {
    const int64_t n = step * i;
    const std::vector<kjoin::Object> single_slice(single.objects.begin(),
                                                  single.objects.begin() + n);
    const std::vector<kjoin::Object> plus_slice(plus.objects.begin(),
                                                plus.objects.begin() + n);
    kjoin::KJoinOptions options;
    options.delta = 0.8;
    options.tau = tau;
    const kjoin::JoinStats kj =
        kjoin::bench::RunKJoin(data.hierarchy, single_slice, options).stats;
    options.plus_mode = true;
    const kjoin::JoinStats kjp =
        kjoin::bench::RunKJoin(data.hierarchy, plus_slice, options).stats;
    PrintRow({std::to_string(n), Fmt(kj.total_seconds, 2), Fmt(kjp.total_seconds, 2),
              std::to_string(kj.results), std::to_string(kjp.results)},
             12);
  }
}

}  // namespace

int main(int argc, char** argv) {
  kjoin::FlagSet flags("bench_fig14_scalability");
  int64_t* step = flags.Int("step", 10000, "object-count increment");
  int64_t* steps = flags.Int("steps", 4, "number of increments");
  if (!flags.Parse(argc, argv)) return 1;
  RunDataset("POI", /*poi=*/true, /*tau=*/0.95, *step, *steps);
  RunDataset("Tweet", /*poi=*/false, /*tau=*/0.85, *step, *steps);
  std::printf("\npaper shape: near-linear growth; K-Join+ slightly above K-Join\n"
              "(it finds more results).\n");
  return 0;
}
