// Figure 14: scalability — total join time for K-Join and K-Join+ as the
// number of objects grows (POI at τ = 0.95, Tweet at τ = 0.85, δ = 0.8),
// plus a thread-count sweep over the shared worker pool (docs/threading.md).
//
//   ./bench_fig14_scalability [--step 20000] [--steps 5] [--threads 1,2,4,8]
//
// The paper sweeps 0.2M..1M; the defaults sweep 20k..100k so the full
// bench suite stays laptop-sized. Use --step 200000 to match the paper.
// The thread sweep runs the largest self-join slice once per thread count
// and reports speedup over the 1-thread run; `identical` asserts the
// parallel result pairs match the serial ones byte for byte.

#include <cstdlib>
#include <sstream>
#include <utility>

#include "bench_util.h"
#include "common/flags.h"

namespace {

using kjoin::bench::Fmt;
using kjoin::bench::PrintRow;

std::vector<int> ParseThreadList(const std::string& csv) {
  std::vector<int> threads;
  std::stringstream stream(csv);
  std::string item;
  while (std::getline(stream, item, ',')) {
    const int value = std::atoi(item.c_str());
    if (value >= 1) threads.push_back(value);
  }
  if (threads.empty() || threads.front() != 1) threads.insert(threads.begin(), 1);
  return threads;
}

void RunDataset(const std::string& name, bool poi, double tau, int64_t step, int64_t steps,
                const std::vector<int>& threads) {
  kjoin::bench::PrintHeader("Figure 14: scalability (" + name + ", delta=0.8, tau=" +
                            Fmt(tau, 2) + ")");
  PrintRow({"#objects", "KJ-s", "KJ+-s", "KJ-results", "KJ+-results"}, 12);
  // Generate the largest dataset once; prefixes of it give the smaller
  // scales (the paper's "varying the number of objects").
  const int64_t max_n = step * steps;
  const kjoin::BenchmarkData data =
      poi ? kjoin::MakePoiBenchmark(max_n) : kjoin::MakeTweetBenchmark(max_n);
  const kjoin::PreparedObjects single =
      kjoin::BuildObjects(data.hierarchy, data.dataset, false, 0.8);
  const kjoin::PreparedObjects plus =
      kjoin::BuildObjects(data.hierarchy, data.dataset, true, 0.8);

  for (int64_t i = 1; i <= steps; ++i) {
    const int64_t n = step * i;
    const std::vector<kjoin::Object> single_slice(single.objects.begin(),
                                                  single.objects.begin() + n);
    const std::vector<kjoin::Object> plus_slice(plus.objects.begin(),
                                                plus.objects.begin() + n);
    kjoin::KJoinOptions options;
    options.delta = 0.8;
    options.tau = tau;
    const kjoin::JoinStats kj =
        kjoin::bench::RunKJoin(data.hierarchy, single_slice, options).stats;
    options.plus_mode = true;
    const kjoin::JoinStats kjp =
        kjoin::bench::RunKJoin(data.hierarchy, plus_slice, options).stats;
    PrintRow({std::to_string(n), Fmt(kj.total_seconds, 2), Fmt(kjp.total_seconds, 2),
              std::to_string(kj.results), std::to_string(kjp.results)},
             12);
  }

  // Thread sweep on the largest slice: end-to-end self-join through the
  // worker pool, all phases sharded.
  kjoin::bench::PrintHeader("Figure 14b: thread scaling (" + name + ", " +
                            std::to_string(max_n) + " objects)");
  PrintRow({"threads", "total-s", "speedup", "util", "tasks", "results", "identical"}, 10);
  std::vector<std::pair<int32_t, int32_t>> serial_pairs;
  double serial_seconds = 0.0;
  for (const int t : threads) {
    kjoin::KJoinOptions options;
    options.delta = 0.8;
    options.tau = tau;
    options.num_threads = t;
    const kjoin::JoinResult result =
        kjoin::bench::RunKJoin(data.hierarchy, single.objects, options);
    const kjoin::JoinStats& s = result.stats;
    if (t == 1) {
      serial_pairs = result.pairs;
      serial_seconds = s.total_seconds;
    }
    const int64_t tasks = s.prepare_tasks + s.filter_tasks + s.verify_tasks;
    PrintRow({std::to_string(t), Fmt(s.total_seconds, 2),
              Fmt(serial_seconds / std::max(1e-9, s.total_seconds), 2) + "x",
              Fmt(s.pool_utilization, 2), std::to_string(tasks), std::to_string(s.results),
              result.pairs == serial_pairs ? "yes" : "NO"},
             10);
  }
}

}  // namespace

int main(int argc, char** argv) {
  kjoin::FlagSet flags("bench_fig14_scalability");
  int64_t* step = flags.Int("step", 10000, "object-count increment");
  int64_t* steps = flags.Int("steps", 4, "number of increments");
  std::string* thread_list =
      flags.String("threads", "1,2,4,8", "comma-separated thread counts for the sweep");
  if (!flags.Parse(argc, argv)) return 1;
  const std::vector<int> threads = ParseThreadList(*thread_list);
  RunDataset("POI", /*poi=*/true, /*tau=*/0.95, *step, *steps, threads);
  RunDataset("Tweet", /*poi=*/false, /*tau=*/0.85, *step, *steps, threads);
  std::printf("\npaper shape: near-linear growth; K-Join+ slightly above K-Join\n"
              "(it finds more results). Thread scaling: speedup approaches the\n"
              "physical core count, with identical results at every thread count.\n");
  return 0;
}
