// Microbenchmark: the filter engine's intersection and count-pruning
// kernels (core/simd.h) across list-length skews.
//
//   ./bench_micro_intersect [--long_len 65536] [--reps 64]
//                           [--out micro_intersect.json]
//
// Two sweeps:
//
//   * intersection — scalar merge vs vector merge vs galloping vs the
//     dispatched IntersectSorted at length ratios from 1:1 to 1:1000.
//     The interesting number is where galloping overtakes the merge
//     (simd::kGallopRatio is the dispatch crossover; this bench is how
//     that constant was picked);
//   * count accumulation — ScanCount feed (AccumulateCounts) plus the
//     thresholded extract (ExtractAndClearBlock), scalar vs dispatched,
//     in counter bumps per second.
//
// Every variant is checked against every other: a mismatched
// intersection size or extraction set flips identical=false in the JSON
// (and the compare script treats that like a regression).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/rng.h"
#include "core/simd.h"

namespace {

using kjoin::simd::IsaLevel;

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Sorted unique ids, `len` of them, drawn from [0, universe).
std::vector<int32_t> RandomList(kjoin::Rng& rng, int32_t len, int32_t universe) {
  std::set<int32_t> ids;
  while (static_cast<int32_t>(ids.size()) < len) {
    ids.insert(static_cast<int32_t>(rng.NextUint64(static_cast<uint64_t>(universe))));
  }
  return std::vector<int32_t>(ids.begin(), ids.end());
}

struct RatioRow {
  std::string ratio;
  int32_t short_len = 0;
  int32_t long_len = 0;
  double scalar_merge_qps = 0.0;
  double simd_merge_qps = 0.0;
  double scalar_gallop_qps = 0.0;
  double simd_gallop_qps = 0.0;
  double dispatched_qps = 0.0;
  std::string dispatched_kernel;  // which variant IntersectSorted picks
  bool identical = true;
};

struct AccumulateRow {
  double scalar_mops = 0.0;      // counter bumps/sec, scalar extract
  double dispatched_mops = 0.0;  // counter bumps/sec, dispatched extract
  int64_t survivors = 0;
  bool identical = true;
};

// Times `reps` passes of fn over the pair pool; returns intersections/sec
// and accumulates the matched count so the loops stay observable.
template <typename Fn>
double MeasureQps(int reps, size_t pairs, int64_t* matched, const Fn& fn) {
  int64_t total = 0;
  const double start = NowSeconds();
  for (int rep = 0; rep < reps; ++rep) {
    for (size_t p = 0; p < pairs; ++p) total += fn(p);
  }
  const double elapsed = NowSeconds() - start;
  *matched = total;
  const double ops = static_cast<double>(reps) * static_cast<double>(pairs);
  return elapsed > 0.0 ? ops / elapsed : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  kjoin::FlagSet flags("bench_micro_intersect");
  int64_t* long_len = flags.Int("long_len", 65536, "length of the longer list");
  int64_t* reps = flags.Int("reps", 64, "timed passes over the pair pool");
  std::string* out = flags.String("out", "", "optional JSON report path");
  if (!flags.Parse(argc, argv)) return 1;

  const IsaLevel best = kjoin::simd::MaxSupportedLevel();
  std::printf("dispatch: max=%s active=%s gallop ratio=%d\n",
              kjoin::simd::IsaLevelName(best),
              kjoin::simd::IsaLevelName(kjoin::simd::ActiveLevel()),
              kjoin::simd::kGallopRatio);

  // ---- intersection sweep ----
  const std::pair<const char*, int32_t> ratios[] = {
      {"1:1", 1}, {"1:4", 4}, {"1:16", 16}, {"1:32", 32},
      {"1:128", 128}, {"1:1000", 1000},
  };
  kjoin::Rng rng(20260808);
  std::vector<RatioRow> rows;
  std::printf("%-8s %10s %10s  %12s %12s %12s %12s %12s\n", "ratio", "short", "long",
              "merge/s", "merge+simd/s", "gallop/s", "gallop+simd/s", "dispatched/s");
  for (const auto& [name, ratio] : ratios) {
    RatioRow row;
    row.ratio = name;
    row.long_len = static_cast<int32_t>(*long_len);
    row.short_len = std::max<int32_t>(1, row.long_len / ratio);
    // Universe 4x the long list keeps the lists ~25% dense, so matches
    // are common without being degenerate.
    const int32_t universe = row.long_len * 4;
    constexpr size_t kPairs = 8;
    std::vector<std::vector<int32_t>> shorts, longs;
    for (size_t p = 0; p < kPairs; ++p) {
      shorts.push_back(RandomList(rng, row.short_len, universe));
      longs.push_back(RandomList(rng, row.long_len, universe));
    }
    std::vector<int32_t> scratch(static_cast<size_t>(row.short_len));
    const auto run = [&](size_t p, auto&& kernel) {
      return kernel(shorts[p].data(), row.short_len, longs[p].data(), row.long_len,
                    scratch.data());
    };
    int64_t ref = 0, got = 0;
    row.scalar_merge_qps = MeasureQps(static_cast<int>(*reps), kPairs, &ref, [&](size_t p) {
      return run(p, [](auto... a) { return kjoin::simd::IntersectLinearAt(IsaLevel::kScalar, a...); });
    });
    row.simd_merge_qps = MeasureQps(static_cast<int>(*reps), kPairs, &got, [&](size_t p) {
      return run(p, [&](auto... a) { return kjoin::simd::IntersectLinearAt(best, a...); });
    });
    row.identical &= got == ref;
    row.scalar_gallop_qps = MeasureQps(static_cast<int>(*reps), kPairs, &got, [&](size_t p) {
      return run(p, [](auto... a) { return kjoin::simd::IntersectGallopAt(IsaLevel::kScalar, a...); });
    });
    row.identical &= got == ref;
    row.simd_gallop_qps = MeasureQps(static_cast<int>(*reps), kPairs, &got, [&](size_t p) {
      return run(p, [&](auto... a) { return kjoin::simd::IntersectGallopAt(best, a...); });
    });
    row.identical &= got == ref;
    row.dispatched_qps = MeasureQps(static_cast<int>(*reps), kPairs, &got, [&](size_t p) {
      return run(p, [](auto... a) { return kjoin::simd::IntersectSorted(a...); });
    });
    row.identical &= got == ref;
    row.dispatched_kernel = ratio >= kjoin::simd::kGallopRatio ? "gallop" : "merge";
    rows.push_back(row);
    std::printf("%-8s %10d %10d  %12.3g %12.3g %12.3g %12.3g %12.3g%s\n", name,
                row.short_len, row.long_len, row.scalar_merge_qps, row.simd_merge_qps,
                row.scalar_gallop_qps, row.simd_gallop_qps, row.dispatched_qps,
                row.identical ? "" : "  MISMATCH");
  }

  // ---- count accumulation + extraction ----
  // Workload shaped like one probe: a handful of posting lists bump a
  // dense counter array, then every touched block is threshold-extracted
  // and cleared. Throughput is counter bumps per second (the accumulate
  // loop dominates; the extract is charged to the same timer because the
  // probe always pays both).
  AccumulateRow acc;
  {
    constexpr int32_t kUniverse = 1 << 16;
    constexpr int kLists = 24;
    std::vector<std::vector<int32_t>> lists;
    int64_t entries = 0;
    for (int l = 0; l < kLists; ++l) {
      lists.push_back(RandomList(rng, 4096, kUniverse));
      entries += static_cast<int64_t>(lists.back().size());
    }
    std::vector<uint8_t> counts(static_cast<size_t>(kUniverse), 0);
    const int32_t num_blocks = kUniverse / kjoin::simd::kCounterBlock;
    std::vector<uint64_t> touched(static_cast<size_t>(num_blocks + 63) / 64, 0);
    std::vector<int32_t> extracted;
    extracted.reserve(static_cast<size_t>(kUniverse));
    const auto pass = [&](IsaLevel level) {
      extracted.clear();
      for (const auto& list : lists) {
        kjoin::simd::AccumulateCounts(list.data(), static_cast<int32_t>(list.size()),
                                      counts.data(), touched.data());
      }
      int32_t buf[kjoin::simd::kCounterBlock];
      for (size_t w = 0; w < touched.size(); ++w) {
        uint64_t bits = touched[w];
        touched[w] = 0;
        while (bits != 0) {
          const int bit = __builtin_ctzll(bits);
          bits &= bits - 1;
          const int32_t begin =
              static_cast<int32_t>(w * 64 + static_cast<size_t>(bit)) *
              kjoin::simd::kCounterBlock;
          const int32_t n = kjoin::simd::ExtractAndClearBlockAt(
              level, counts.data() + begin, begin, kjoin::simd::kCounterBlock,
              /*threshold=*/2, buf);
          extracted.insert(extracted.end(), buf, buf + n);
        }
      }
      return static_cast<int64_t>(extracted.size());
    };
    const int acc_reps = static_cast<int>(*reps) * 4;
    int64_t ref_survivors = 0;
    double start = NowSeconds();
    for (int rep = 0; rep < acc_reps; ++rep) ref_survivors = pass(IsaLevel::kScalar);
    const double scalar_seconds = NowSeconds() - start;
    start = NowSeconds();
    int64_t survivors = 0;
    for (int rep = 0; rep < acc_reps; ++rep) survivors = pass(best);
    const double simd_seconds = NowSeconds() - start;
    acc.identical = survivors == ref_survivors;
    acc.survivors = survivors;
    const double bumps = static_cast<double>(entries) * acc_reps;
    acc.scalar_mops = scalar_seconds > 0.0 ? bumps / scalar_seconds / 1e6 : 0.0;
    acc.dispatched_mops = simd_seconds > 0.0 ? bumps / simd_seconds / 1e6 : 0.0;
    std::printf("accumulate+extract: scalar %.1f Mbumps/s | dispatched %.1f Mbumps/s "
                "(%.2fx) | survivors=%lld identical=%s\n",
                acc.scalar_mops, acc.dispatched_mops,
                acc.scalar_mops > 0.0 ? acc.dispatched_mops / acc.scalar_mops : 0.0,
                static_cast<long long>(acc.survivors), acc.identical ? "true" : "false");
  }

  if (!out->empty()) {
    std::FILE* f = std::fopen(out->c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", out->c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"micro_intersect\": {\n");
    std::fprintf(f, "    \"isa\": \"%s\",\n", kjoin::simd::IsaLevelName(best));
    std::fprintf(f, "    \"long_len\": %lld,\n", static_cast<long long>(*long_len));
    std::fprintf(f, "    \"rows\": [");
    for (size_t i = 0; i < rows.size(); ++i) {
      const RatioRow& row = rows[i];
      std::fprintf(f,
                   "%s\n      {\"ratio\": \"%s\", \"short_len\": %d, \"long_len\": %d, "
                   "\"scalar_merge_qps\": %.1f, \"simd_merge_qps\": %.1f, "
                   "\"scalar_gallop_qps\": %.1f, \"simd_gallop_qps\": %.1f, "
                   "\"dispatched_qps\": %.1f, \"dispatched_kernel\": \"%s\", "
                   "\"identical\": %s}",
                   i == 0 ? "" : ",", row.ratio.c_str(), row.short_len, row.long_len,
                   row.scalar_merge_qps, row.simd_merge_qps, row.scalar_gallop_qps,
                   row.simd_gallop_qps, row.dispatched_qps, row.dispatched_kernel.c_str(),
                   row.identical ? "true" : "false");
    }
    std::fprintf(f, "\n    ],\n");
    std::fprintf(f,
                 "    \"accumulate\": {\"scalar_mops\": %.1f, \"dispatched_mops\": %.1f, "
                 "\"survivors\": %lld, \"identical\": %s}\n",
                 acc.scalar_mops, acc.dispatched_mops,
                 static_cast<long long>(acc.survivors), acc.identical ? "true" : "false");
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out->c_str());
  }
  return 0;
}
