// Figure 8: effectiveness (recall and F-measure) vs the element threshold
// δ ∈ [0.5, 0.9] at τ = 0.7, on Pub and Res, for FastJoin, Synonym,
// K-Join and K-Join+.
//
//   ./bench_fig8_quality_delta [--tau 0.7]

#include "baselines/fastjoin.h"
#include "baselines/synonym_join.h"
#include "bench_util.h"
#include "common/flags.h"

namespace {

using kjoin::bench::Fmt;
using kjoin::bench::PrintRow;

void RunDataset(const std::string& name, const kjoin::BenchmarkData& data, double tau) {
  kjoin::bench::PrintHeader("Figure 8: recall & F-measure vs delta (" + name +
                            ", tau=" + Fmt(tau, 2) + ")");
  PrintRow({"delta", "FJ-rec", "Syn-rec", "KJ-rec", "KJ+-rec", "FJ-F", "Syn-F", "KJ-F",
            "KJ+-F"},
           10);
  const auto truth = kjoin::GroundTruthPairs(data.dataset);
  const auto records = kjoin::bench::RawRecords(data.dataset);
  // Synonym ignores delta entirely (the paper observes the same).
  kjoin::SynonymJoin synonym(data.dataset.synonyms, kjoin::SynonymJoinOptions{tau});
  const kjoin::QualityReport synonym_report =
      kjoin::EvaluateQuality(synonym.SelfJoin(records).pairs, truth);

  for (double delta : {0.5, 0.6, 0.7, 0.8, 0.9}) {
    kjoin::FastJoin fastjoin(kjoin::FastJoinOptions{delta, tau, 2});
    const kjoin::QualityReport fj =
        kjoin::EvaluateQuality(fastjoin.SelfJoin(records).pairs, truth);

    const kjoin::PreparedObjects single =
        kjoin::BuildObjects(data.hierarchy, data.dataset, false, /*min_phi=*/delta);
    kjoin::KJoinOptions options;
    options.delta = delta;
    options.tau = tau;
    const kjoin::QualityReport kj = kjoin::EvaluateQuality(
        kjoin::bench::RunKJoin(data.hierarchy, single.objects, options).pairs, truth);

    const kjoin::PreparedObjects plus =
        kjoin::BuildObjects(data.hierarchy, data.dataset, true, /*min_phi=*/delta);
    options.plus_mode = true;
    const kjoin::QualityReport kjp = kjoin::EvaluateQuality(
        kjoin::bench::RunKJoin(data.hierarchy, plus.objects, options).pairs, truth);

    PrintRow({Fmt(delta, 2), Fmt(fj.recall * 100, 1), Fmt(synonym_report.recall * 100, 1),
              Fmt(kj.recall * 100, 1), Fmt(kjp.recall * 100, 1), Fmt(fj.f_measure, 3),
              Fmt(synonym_report.f_measure, 3), Fmt(kj.f_measure, 3), Fmt(kjp.f_measure, 3)},
             10);
  }
}

}  // namespace

int main(int argc, char** argv) {
  kjoin::FlagSet flags("bench_fig8_quality_delta");
  double* tau = flags.Double("tau", 0.7, "object similarity threshold");
  if (!flags.Parse(argc, argv)) return 1;
  RunDataset("Pub", kjoin::MakePubBenchmark(), *tau);
  RunDataset("Res", kjoin::MakeResBenchmark(), *tau);
  std::printf("\npaper shape: recall declines slightly with delta; Synonym is flat\n"
              "(it has no element threshold); F stays roughly level.\n");
  return 0;
}
