// R-S join (§6.1): match tweets against a POI directory.
//
// Both collections are drawn from the same knowledge hierarchy; the join
// indexes the POIs and probes with the tweets, reporting tweet->POI links
// whose knowledge-aware similarity clears τ.
//
//   ./tweet_poi_join [--pois 4000] [--tweets 2000] [--delta 0.8] [--tau 0.6]

#include <cstdio>

#include "common/flags.h"
#include "core/kjoin.h"
#include "data/benchmark_suite.h"
#include "data/generator.h"

int main(int argc, char** argv) {
  kjoin::FlagSet flags("tweet_poi_join");
  int64_t* num_pois = flags.Int("pois", 4000, "POI directory size");
  int64_t* num_tweets = flags.Int("tweets", 2000, "tweet collection size");
  double* delta = flags.Double("delta", 0.8, "element similarity threshold");
  double* tau = flags.Double("tau", 0.6, "object similarity threshold");
  if (!flags.Parse(argc, argv)) return 1;

  // One hierarchy for both sides (Table 2 shape).
  const kjoin::BenchmarkData poi = kjoin::MakePoiBenchmark(*num_pois, /*seed=*/31);
  const kjoin::Dataset tweets =
      kjoin::DatasetGenerator(poi.hierarchy, kjoin::TweetParams(*num_tweets, /*seed=*/37))
          .Generate("Tweet");

  // Both collections must share one ObjectBuilder (token ids are global).
  kjoin::EntityMatcherOptions matcher_options;
  matcher_options.min_phi = *delta;
  kjoin::EntityMatcher matcher(poi.hierarchy, matcher_options);
  for (const auto& [alias, label] : poi.dataset.synonyms) matcher.AddSynonym(alias, label);
  kjoin::ObjectBuilder builder(matcher, /*multi_mapping=*/true);

  std::vector<kjoin::Object> poi_objects, tweet_objects;
  for (const kjoin::Record& record : poi.dataset.records) {
    poi_objects.push_back(builder.Build(record.id, record.tokens));
  }
  for (const kjoin::Record& record : tweets.records) {
    tweet_objects.push_back(builder.Build(record.id, record.tokens));
  }

  kjoin::KJoinOptions options;
  options.delta = *delta;
  options.tau = *tau;
  options.plus_mode = true;
  const kjoin::KJoin join(poi.hierarchy, options);
  const kjoin::JoinResult result = join.Join(poi_objects, tweet_objects);

  std::printf("R-S join: %zu POIs x %zu tweets\n", poi_objects.size(),
              tweet_objects.size());
  std::printf("candidates %lld, matches %zu, total %.3fs\n",
              static_cast<long long>(result.stats.candidates), result.pairs.size(),
              result.stats.total_seconds);

  int shown = 0;
  for (const auto& [p, t] : result.pairs) {
    if (shown++ >= 3) break;
    std::string poi_text, tweet_text;
    for (const auto& tok : poi.dataset.records[p].tokens) poi_text += tok + " ";
    for (const auto& tok : tweets.records[t].tokens) tweet_text += tok + " ";
    std::printf("\n  tweet: %s\n  poi:   %s\n", tweet_text.c_str(), poi_text.c_str());
  }
  return 0;
}
