// Knowledge-aware similarity search: index a POI directory once, answer
// point queries with KJoinIndex (threshold search and top-k), and persist
// the dataset + hierarchy to disk with the text IO.
//
//   ./similarity_search [--n 5000] [--queries 5] [--delta 0.8] [--tau 0.6]

#include <cstdio>

#include "common/flags.h"
#include "core/kjoin_index.h"
#include "core/topk_join.h"
#include "data/benchmark_suite.h"
#include "data/dataset_io.h"
#include "hierarchy/hierarchy_io.h"

int main(int argc, char** argv) {
  kjoin::FlagSet flags("similarity_search");
  int64_t* n = flags.Int("n", 5000, "indexed POI records");
  int64_t* queries = flags.Int("queries", 5, "number of sample queries");
  double* delta = flags.Double("delta", 0.8, "element similarity threshold");
  double* tau = flags.Double("tau", 0.6, "object similarity threshold");
  std::string* dump = flags.String("dump", "", "directory to dump hierarchy/dataset to");
  if (!flags.Parse(argc, argv)) return 1;

  const kjoin::BenchmarkData data = kjoin::MakePoiBenchmark(*n, /*seed=*/51);
  const kjoin::PreparedObjects prepared =
      kjoin::BuildObjects(data.hierarchy, data.dataset, /*multi_mapping=*/true, *delta);

  if (!dump->empty()) {
    const std::string tree_path = *dump + "/hierarchy.txt";
    const std::string data_path = *dump + "/poi.tsv";
    if (kjoin::WriteHierarchyFile(data.hierarchy, tree_path).ok() &&
        kjoin::WriteDatasetFile(data.dataset, data_path).ok()) {
      std::printf("dumped %s and %s\n", tree_path.c_str(), data_path.c_str());
    }
  }

  kjoin::KJoinOptions options;
  options.delta = *delta;
  options.tau = *tau;
  options.plus_mode = true;
  const kjoin::KJoinIndex index(data.hierarchy, options, prepared.objects);
  std::printf("indexed %lld POI records\n\n", static_cast<long long>(index.num_indexed()));

  // Query with perturbed copies of indexed records: each should retrieve
  // its original.
  for (int64_t q = 0; q < *queries; ++q) {
    const int32_t target = static_cast<int32_t>(q * 97 % *n);
    std::vector<std::string> tokens = data.dataset.records[target].tokens;
    if (!tokens.empty()) tokens.pop_back();  // drop one token
    kjoin::Object query = prepared.builder->Build(-1, tokens);

    std::string text;
    for (const auto& t : tokens) text += t + " ";
    std::printf("query: %s\n", text.c_str());
    const auto hits = index.SearchTopK(query, 3, *tau);
    std::printf("  %lld candidates -> %zu hits\n",
                static_cast<long long>(index.last_candidates()), hits.size());
    for (const kjoin::SearchHit& hit : hits) {
      std::string hit_text;
      for (const auto& t : data.dataset.records[hit.object_index].tokens) {
        hit_text += t + " ";
      }
      std::printf("  #%-6d SIM=%.3f  %s\n", hit.object_index, hit.similarity,
                  hit_text.c_str());
    }
    std::printf("\n");
  }

  // Bonus: the k most similar record pairs overall, no τ needed.
  kjoin::TopKOptions topk_options;
  topk_options.join = options;
  const kjoin::TopKJoin topk(data.hierarchy, topk_options);
  const kjoin::TopKResult best = topk.SelfJoinTopK(prepared.objects, 3);
  std::printf("top-3 most similar pairs overall (found at tau=%.2f, %d rounds):\n",
              best.final_tau, best.rounds);
  for (const kjoin::ScoredPair& pair : best.pairs) {
    std::printf("  #%d ~ #%d  SIM=%.3f\n", pair.first, pair.second, pair.similarity);
  }
  return 0;
}
