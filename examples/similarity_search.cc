// Knowledge-aware similarity search: index a POI directory once, answer
// point queries with KJoinIndex (threshold search and top-k), and persist
// the dataset + hierarchy to disk with the text IO.
//
//   ./similarity_search [--n 5000] [--queries 5] [--delta 0.8] [--tau 0.6]
//   ./similarity_search --save-snapshot poi.snap     # persist the built index
//   ./similarity_search --load-snapshot poi.snap     # skip the rebuild

#include <algorithm>
#include <cstdio>
#include <optional>

#include "common/flags.h"
#include "common/timer.h"
#include "core/kjoin_index.h"
#include "core/topk_join.h"
#include "data/benchmark_suite.h"
#include "data/dataset_io.h"
#include "hierarchy/hierarchy_io.h"
#include "serve/snapshot.h"

int main(int argc, char** argv) {
  kjoin::FlagSet flags("similarity_search");
  int64_t* n = flags.Int("n", 5000, "indexed POI records");
  int64_t* queries = flags.Int("queries", 5, "number of sample queries");
  double* delta = flags.Double("delta", 0.8, "element similarity threshold");
  double* tau = flags.Double("tau", 0.6, "object similarity threshold");
  std::string* dump = flags.String("dump", "", "directory to dump hierarchy/dataset to");
  std::string* save_snapshot =
      flags.String("save-snapshot", "", "write a binary index snapshot here after building");
  std::string* load_snapshot =
      flags.String("load-snapshot", "", "serve from this snapshot instead of rebuilding");
  if (!flags.Parse(argc, argv)) return 1;

  const kjoin::BenchmarkData data = kjoin::MakePoiBenchmark(*n, /*seed=*/51);
  const kjoin::PreparedObjects prepared =
      kjoin::BuildObjects(data.hierarchy, data.dataset, /*multi_mapping=*/true, *delta);

  if (!dump->empty()) {
    const std::string tree_path = *dump + "/hierarchy.txt";
    const std::string data_path = *dump + "/poi.tsv";
    if (kjoin::WriteHierarchyFile(data.hierarchy, tree_path).ok() &&
        kjoin::WriteDatasetFile(data.dataset, data_path).ok()) {
      std::printf("dumped %s and %s\n", tree_path.c_str(), data_path.c_str());
    }
  }

  kjoin::KJoinOptions options;
  options.delta = *delta;
  options.tau = *tau;
  options.plus_mode = true;

  // The index either comes back from a snapshot (no tokenize, no
  // signature generation, no LCA build) or is built from the prepared
  // objects; queries must use the matching token interner either way.
  std::optional<kjoin::KJoinIndex> built;
  std::optional<kjoin::serve::LoadedIndex> loaded;
  kjoin::serve::QueryPipeline pipeline;
  const kjoin::KJoinIndex* index = nullptr;
  kjoin::ObjectBuilder* query_builder = prepared.builder.get();
  if (!load_snapshot->empty()) {
    kjoin::WallTimer timer;
    auto result = kjoin::serve::LoadIndexSnapshot(*load_snapshot);
    if (!result.ok()) {
      std::fprintf(stderr, "cannot load snapshot: %s\n", result.status().ToString().c_str());
      return 1;
    }
    loaded.emplace(std::move(*result));
    std::printf("loaded snapshot %s (%llu bytes) in %.3fs\n", load_snapshot->c_str(),
                static_cast<unsigned long long>(loaded->file_bytes), timer.ElapsedSeconds());
    pipeline = kjoin::serve::MakeQueryPipeline(*loaded);
    query_builder = pipeline.builder.get();
    index = loaded->index.get();
  } else {
    kjoin::WallTimer timer;
    built.emplace(data.hierarchy, options, prepared.objects);
    std::printf("built index in %.3fs\n", timer.ElapsedSeconds());
    index = &*built;
    if (!save_snapshot->empty()) {
      kjoin::serve::SnapshotInput input;
      input.index = index;
      input.tokens = prepared.builder->TokenTable();
      input.synonyms = data.dataset.synonyms;
      const kjoin::Status saved = kjoin::serve::SaveIndexSnapshot(input, *save_snapshot);
      if (!saved.ok()) {
        std::fprintf(stderr, "snapshot save failed: %s\n", saved.ToString().c_str());
        return 1;
      }
      std::printf("saved snapshot to %s\n", save_snapshot->c_str());
    }
  }
  std::printf("indexed %lld POI records\n\n", static_cast<long long>(index->num_indexed()));

  // Query with perturbed copies of indexed records: each should retrieve
  // its original.
  for (int64_t q = 0; q < *queries; ++q) {
    const int32_t target = static_cast<int32_t>(q * 97 % *n);
    std::vector<std::string> tokens = data.dataset.records[target].tokens;
    if (!tokens.empty()) tokens.pop_back();  // drop one token
    kjoin::Object query = query_builder->Build(-1, tokens);

    std::string text;
    for (const auto& t : tokens) text += t + " ";
    std::printf("query: %s\n", text.c_str());
    // A loaded snapshot may have been built at a different tau; top-k
    // cannot search below the index's configured threshold.
    const auto hits = index->SearchTopK(query, 3, std::max(*tau, index->options().tau));
    std::printf("  %lld candidates -> %zu hits\n",
                static_cast<long long>(index->last_candidates()), hits.size());
    for (const kjoin::SearchHit& hit : hits) {
      std::string hit_text;
      for (const auto& t : data.dataset.records[hit.object_index].tokens) {
        hit_text += t + " ";
      }
      std::printf("  #%-6d SIM=%.3f  %s\n", hit.object_index, hit.similarity,
                  hit_text.c_str());
    }
    std::printf("\n");
  }

  // Bonus: the k most similar record pairs overall, no τ needed.
  kjoin::TopKOptions topk_options;
  topk_options.join = options;
  const kjoin::TopKJoin topk(data.hierarchy, topk_options);
  const kjoin::TopKResult best = topk.SelfJoinTopK(prepared.objects, 3);
  std::printf("top-3 most similar pairs overall (found at tau=%.2f, %d rounds):\n",
              best.final_tau, best.rounds);
  for (const kjoin::ScoredPair& pair : best.pairs) {
    std::printf("  #%d ~ #%d  SIM=%.3f\n", pair.first, pair.second, pair.similarity);
  }
  return 0;
}
