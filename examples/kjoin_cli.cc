// kjoin_cli — end-to-end command-line driver.
//
// Loads a knowledge hierarchy and a dataset from disk (or generates a POI
// workload when none is given), runs a knowledge-aware self join, and
// writes the similar pairs as TSV. If the dataset carries ground-truth
// clusters, quality is reported.
//
//   ./kjoin_cli --hierarchy tree.txt --dataset records.tsv \
//               --delta 0.8 --tau 0.7 --plus --out pairs.tsv
//   ./kjoin_cli --generate 10000 --out pairs.tsv
//   ./kjoin_cli --generate 10000 --save-snapshot poi.snap   # persist the index
//   ./kjoin_cli --load-snapshot poi.snap --out pairs.tsv    # skip parsing/building

#include <cstdio>
#include <fstream>

#include "common/flags.h"
#include "core/clustering.h"
#include "core/kjoin.h"
#include "core/kjoin_index.h"
#include "data/benchmark_suite.h"
#include "data/dataset_io.h"
#include "data/quality.h"
#include "hierarchy/hierarchy_io.h"
#include "serve/snapshot.h"

int main(int argc, char** argv) {
  kjoin::FlagSet flags("kjoin_cli");
  std::string* hierarchy_path = flags.String("hierarchy", "", "hierarchy file (see README)");
  std::string* dataset_path = flags.String("dataset", "", "dataset file (see README)");
  int64_t* generate = flags.Int("generate", 0, "generate a POI workload of this size instead");
  double* delta = flags.Double("delta", 0.8, "element similarity threshold");
  double* tau = flags.Double("tau", 0.7, "object similarity threshold");
  bool* plus = flags.Bool("plus", true, "K-Join+ (synonyms + typo tolerance)");
  int64_t* threads = flags.Int("threads", 1, "verification threads");
  double* deadline = flags.Double("deadline", 0.0, "join wall-clock budget in seconds (0 = none)");
  std::string* out = flags.String("out", "", "write pairs TSV here (default: stdout summary only)");
  bool* cluster = flags.Bool("cluster", false, "also report entity clusters");
  std::string* save_snapshot = flags.String(
      "save-snapshot", "", "also build a search index over the records and snapshot it here");
  std::string* load_snapshot = flags.String(
      "load-snapshot", "", "take hierarchy + objects from this snapshot (skips text parsing)");
  if (!flags.Parse(argc, argv)) return 1;

  // --- load or generate the workload --------------------------------------
  std::optional<kjoin::Hierarchy> hierarchy;
  std::optional<kjoin::Dataset> dataset;
  std::optional<kjoin::serve::LoadedIndex> loaded;
  if (!load_snapshot->empty()) {
    auto result = kjoin::serve::LoadIndexSnapshot(*load_snapshot);
    if (!result.ok()) {
      std::fprintf(stderr, "cannot load snapshot: %s\n", result.status().ToString().c_str());
      return 1;
    }
    loaded.emplace(std::move(*result));
  } else if (*generate > 0) {
    kjoin::BenchmarkData data = kjoin::MakePoiBenchmark(*generate);
    hierarchy.emplace(std::move(data.hierarchy));
    dataset.emplace(std::move(data.dataset));
  } else {
    if (hierarchy_path->empty() || dataset_path->empty()) {
      std::fprintf(stderr, "need --hierarchy and --dataset (or --generate N)\n%s",
                   flags.Usage().c_str());
      return 1;
    }
    kjoin::StatusOr<kjoin::Hierarchy> tree = kjoin::ReadHierarchyFile(*hierarchy_path);
    if (!tree.ok()) {
      std::fprintf(stderr, "cannot load hierarchy: %s\n", tree.status().ToString().c_str());
      return 1;
    }
    hierarchy.emplace(std::move(*tree));
    kjoin::StatusOr<kjoin::Dataset> records = kjoin::ReadDatasetFile(*dataset_path);
    if (!records.ok()) {
      std::fprintf(stderr, "cannot load dataset: %s\n", records.status().ToString().c_str());
      return 1;
    }
    dataset.emplace(std::move(*records));
  }
  const kjoin::Hierarchy* tree = loaded ? loaded->hierarchy.get() : &*hierarchy;

  // --- join ----------------------------------------------------------------
  kjoin::PreparedObjects prepared;
  if (!loaded) prepared = kjoin::BuildObjects(*tree, *dataset, *plus, *delta);
  const std::vector<kjoin::Object>& objects =
      loaded ? loaded->index->objects() : prepared.objects;
  std::fprintf(stderr, "hierarchy: %lld nodes; %zu records (%s)\n",
               static_cast<long long>(tree->num_nodes()), objects.size(),
               loaded ? "from snapshot" : "from text");
  kjoin::KJoinOptions options;
  options.delta = *delta;
  options.tau = *tau;
  options.plus_mode = *plus;
  options.num_threads = static_cast<int>(*threads);
  const kjoin::KJoin join(*tree, options);
  kjoin::JoinControl control;
  control.deadline_seconds = *deadline;
  kjoin::JoinResult result;
  const kjoin::Status status = join.SelfJoin(objects, control, &result);
  if (!status.ok()) {
    std::fprintf(stderr, "join stopped in %s phase: %s (keeping %zu partial pairs)\n",
                 kjoin::JoinPhaseName(result.stats.stopped_phase),
                 status.ToString().c_str(), result.pairs.size());
  }

  std::fprintf(stderr,
               "join: %lld candidates -> %zu pairs in %.3fs "
               "(signatures %.3fs, filter %.3fs, verify %.3fs)\n",
               static_cast<long long>(result.stats.candidates), result.pairs.size(),
               result.stats.total_seconds, result.stats.signature_seconds,
               result.stats.filter_seconds, result.stats.verify_seconds);

  // --- outputs ---------------------------------------------------------
  if (!out->empty()) {
    std::ofstream file(*out);
    if (!file) {
      std::fprintf(stderr, "cannot write %s\n", out->c_str());
      return 1;
    }
    file << "# left_id\tright_id\tsimilarity\n";
    for (const auto& [a, b] : result.pairs) {
      file << a << "\t" << b << "\t" << join.ExactSimilarity(objects[a], objects[b]) << "\n";
    }
    std::fprintf(stderr, "wrote %zu pairs to %s\n", result.pairs.size(), out->c_str());
  }

  if (!save_snapshot->empty()) {
    // The search index shares the join's thresholds, so a server loading
    // the snapshot answers queries consistent with these pairs.
    kjoin::serve::SnapshotInput input;
    std::optional<kjoin::KJoinIndex> index;
    if (loaded) {
      input.index = loaded->index.get();
      input.tokens = loaded->tokens;
      input.synonyms = loaded->synonyms;
    } else {
      index.emplace(*tree, options, objects);
      input.index = &*index;
      input.tokens = prepared.builder->TokenTable();
      input.synonyms = dataset->synonyms;
    }
    const kjoin::Status saved = kjoin::serve::SaveIndexSnapshot(input, *save_snapshot);
    if (!saved.ok()) {
      std::fprintf(stderr, "snapshot save failed: %s\n", saved.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "saved index snapshot to %s\n", save_snapshot->c_str());
  }

  // Ground truth travels with the text dataset only; a snapshot carries
  // objects, not cluster labels.
  bool have_truth = false;
  if (dataset) {
    for (const kjoin::Record& record : dataset->records) have_truth |= record.cluster >= 0;
  }
  if (have_truth) {
    const kjoin::QualityReport quality =
        kjoin::EvaluateQuality(result.pairs, kjoin::GroundTruthPairs(*dataset));
    std::fprintf(stderr, "quality vs ground truth: P %.3f  R %.3f  F %.3f\n",
                 quality.precision, quality.recall, quality.f_measure);
  }
  if (*cluster) {
    const kjoin::Clustering clustering =
        kjoin::ClusterPairs(static_cast<int64_t>(objects.size()), result.pairs);
    std::fprintf(stderr, "entity clusters: %d (from %zu records)\n", clustering.num_clusters,
                 objects.size());
  }
  return 0;
}
