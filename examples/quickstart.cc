// Quickstart: build a knowledge hierarchy, map records to it, and run a
// knowledge-aware similarity self-join.
//
// This replays the paper's running example: the Figure 1 food/location
// hierarchy and the nine objects of Table 1, with δ = 0.7 and τ = 0.6.
//
//   ./quickstart [--delta 0.7] [--tau 0.6]

#include <cstdio>

#include "common/flags.h"
#include "core/kjoin.h"
#include "hierarchy/hierarchy_builder.h"
#include "text/entity_matcher.h"

int main(int argc, char** argv) {
  kjoin::FlagSet flags("quickstart");
  double* delta = flags.Double("delta", 0.7, "element similarity threshold");
  double* tau = flags.Double("tau", 0.6, "object similarity threshold");
  if (!flags.Parse(argc, argv)) return 1;

  // 1. The knowledge hierarchy (Figure 1 of the paper). Real applications
  //    load one with kjoin::ReadHierarchyFile or build one from a taxonomy.
  const kjoin::Hierarchy tree = kjoin::MakeFigure1Hierarchy();
  std::printf("hierarchy: %lld nodes, height %d\n\n",
              static_cast<long long>(tree.num_nodes()), tree.height());

  // 2. An entity matcher maps raw tokens onto hierarchy nodes.
  const kjoin::EntityMatcher matcher(tree);
  kjoin::ObjectBuilder builder(matcher, /*multi_mapping=*/false);

  // 3. Records (Table 1).
  const std::vector<std::vector<std::string>> records = {
      {"BurgerKing", "MountainView"},
      {"Pizza", "PaloAlto", "Brooklyn"},
      {"Fastfood", "GoogleHeadquarters"},
      {"PizzaHut", "KFC", "CA"},
      {"Pizza", "GoogleHeadquarters"},
      {"Fastfood", "Manhattan"},
      {"Brooklyn", "Food"},
      {"Pizza", "KFC", "Dominos", "SanFrancisco", "Manhattan", "Brooklyn"},
      {"Fastfood", "PizzaHut", "BurgerKing", "PaloAlto", "MountainView", "NewYork"},
  };
  std::vector<kjoin::Object> objects;
  for (size_t i = 0; i < records.size(); ++i) {
    objects.push_back(builder.Build(static_cast<int32_t>(i), records[i]));
  }

  // 4. Join.
  kjoin::KJoinOptions options;
  options.delta = *delta;
  options.tau = *tau;
  const kjoin::KJoin join(tree, options);
  const kjoin::JoinResult result = join.SelfJoin(objects);

  std::printf("delta=%.2f tau=%.2f: %lld candidates, %zu similar pairs\n\n", *delta, *tau,
              static_cast<long long>(result.stats.candidates), result.pairs.size());
  for (const auto& [x, y] : result.pairs) {
    std::printf("  S%d ~ S%d   SIM = %.4f\n", x + 1, y + 1,
                join.ExactSimilarity(objects[x], objects[y]));
  }
  return 0;
}
