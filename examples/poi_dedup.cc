// POI deduplication — the paper's motivating application (§1: Factual
// integrating crawled points of interest).
//
// Generates a POI dataset with planted duplicate clusters (category
// sibling swaps, typos, synonyms), deduplicates it with K-Join+, and
// scores the result against the ground truth.
//
//   ./poi_dedup [--n 5000] [--delta 0.8] [--tau 0.7] [--seed 19]

#include <cstdio>

#include "common/flags.h"
#include "core/clustering.h"
#include "core/kjoin.h"
#include "data/benchmark_suite.h"
#include "data/quality.h"

int main(int argc, char** argv) {
  kjoin::FlagSet flags("poi_dedup");
  int64_t* n = flags.Int("n", 5000, "number of POI records");
  double* delta = flags.Double("delta", 0.8, "element similarity threshold");
  double* tau = flags.Double("tau", 0.7, "object similarity threshold");
  int64_t* seed = flags.Int("seed", 19, "dataset seed");
  int64_t* threads = flags.Int("threads", 4, "verification threads");
  if (!flags.Parse(argc, argv)) return 1;

  const kjoin::BenchmarkData data =
      kjoin::MakePoiBenchmark(*n, static_cast<uint64_t>(*seed));
  std::printf("generated %zu POI records over a %lld-node hierarchy\n",
              data.dataset.records.size(),
              static_cast<long long>(data.hierarchy.num_nodes()));

  // K-Join+ objects: tokens map to multiple nodes via synonyms and typo
  // tolerance.
  const kjoin::PreparedObjects prepared =
      kjoin::BuildObjects(data.hierarchy, data.dataset, /*multi_mapping=*/true, *delta);

  kjoin::KJoinOptions options;
  options.delta = *delta;
  options.tau = *tau;
  options.plus_mode = true;
  options.num_threads = static_cast<int>(*threads);
  const kjoin::KJoin join(data.hierarchy, options);
  const kjoin::JoinResult result = join.SelfJoin(prepared.objects);

  const auto truth = kjoin::GroundTruthPairs(data.dataset);
  const kjoin::QualityReport report = kjoin::EvaluateQuality(result.pairs, truth);

  std::printf("\njoin finished in %.3fs (filter %.3fs, verify %.3fs)\n",
              result.stats.total_seconds, result.stats.filter_seconds,
              result.stats.verify_seconds);
  std::printf("candidates: %lld   results: %zu   truth pairs: %zu\n",
              static_cast<long long>(result.stats.candidates), result.pairs.size(),
              truth.size());
  std::printf("precision %.3f   recall %.3f   F-measure %.3f\n", report.precision,
              report.recall, report.f_measure);

  // Fold pairs into entity clusters (transitive closure) and score them.
  const kjoin::Clustering clustering =
      kjoin::ClusterPairs(static_cast<int64_t>(prepared.objects.size()), result.pairs);
  std::vector<int32_t> truth_clusters;
  for (const auto& record : data.dataset.records) truth_clusters.push_back(record.cluster);
  const kjoin::ClusterQuality cluster_quality =
      kjoin::EvaluateClustering(clustering, truth_clusters);
  std::printf("entity clusters: %d (pairwise cluster F1 %.3f)\n", clustering.num_clusters,
              cluster_quality.f1);

  // Show a few detected duplicate pairs with their records.
  std::printf("\nsample duplicates found:\n");
  int shown = 0;
  for (const auto& [x, y] : result.pairs) {
    if (shown++ >= 3) break;
    std::string left, right;
    for (const auto& t : data.dataset.records[x].tokens) left += t + " ";
    for (const auto& t : data.dataset.records[y].tokens) right += t + " ";
    std::printf("  #%d: %s\n  #%d: %s\n  SIM = %.3f\n", x, left.c_str(), y, right.c_str(),
                join.ExactSimilarity(prepared.objects[x], prepared.objects[y]));
  }
  return 0;
}
