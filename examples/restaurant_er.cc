// Restaurant entity resolution (the paper's Res benchmark, §7.2).
//
// Resolves duplicate restaurant listings whose inconsistencies come from
// synonyms and knowledge-hierarchy errors ("Californian food" listed as
// "American food"). Compares plain K-Join (exact element mapping) against
// K-Join+ (synonyms + typo tolerance) — the knowledge-aware matching is
// what recovers the hard duplicates.
//
//   ./restaurant_er [--delta 0.5] [--tau 0.6]

#include <cstdio>

#include "common/flags.h"
#include "core/kjoin.h"
#include "data/benchmark_suite.h"
#include "data/quality.h"

namespace {

void RunOnce(const kjoin::BenchmarkData& data, bool plus_mode, double delta, double tau) {
  const kjoin::PreparedObjects prepared =
      kjoin::BuildObjects(data.hierarchy, data.dataset, plus_mode);

  kjoin::KJoinOptions options;
  options.delta = delta;
  options.tau = tau;
  options.plus_mode = plus_mode;
  const kjoin::KJoin join(data.hierarchy, options);
  const kjoin::JoinResult result = join.SelfJoin(prepared.objects);
  const kjoin::QualityReport report =
      kjoin::EvaluateQuality(result.pairs, kjoin::GroundTruthPairs(data.dataset));

  std::printf("%-8s  precision %.3f  recall %.3f  F %.3f  (%zu pairs, %.3fs)\n",
              plus_mode ? "K-Join+" : "K-Join", report.precision, report.recall,
              report.f_measure, result.pairs.size(), result.stats.total_seconds);
}

}  // namespace

int main(int argc, char** argv) {
  kjoin::FlagSet flags("restaurant_er");
  double* delta = flags.Double("delta", 0.5, "element similarity threshold");
  double* tau = flags.Double("tau", 0.6, "object similarity threshold");
  if (!flags.Parse(argc, argv)) return 1;

  const kjoin::BenchmarkData data = kjoin::MakeResBenchmark();
  std::printf("Res benchmark: %zu restaurant records, %zu synonym rules\n\n",
              data.dataset.records.size(), data.dataset.synonyms.size());

  RunOnce(data, /*plus_mode=*/false, *delta, *tau);
  RunOnce(data, /*plus_mode=*/true, *delta, *tau);

  std::printf(
      "\nK-Join+ recovers the synonym/typo duplicates plain K-Join misses\n"
      "(paper Table 4: Res F-measure 79.2 -> 84.0).\n");
  return 0;
}
