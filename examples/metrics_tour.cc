// A tour of the extension points (§6): set-similarity metrics (Jaccard /
// Dice / Cosine), the Wu & Palmer element metric, and DAG-shaped knowledge
// bases.
//
//   ./metrics_tour

#include <cstdio>

#include "core/kjoin.h"
#include "hierarchy/dag.h"
#include "hierarchy/hierarchy_builder.h"
#include "text/entity_matcher.h"

namespace {

const char* MetricName(kjoin::SetMetric metric) {
  switch (metric) {
    case kjoin::SetMetric::kJaccard: return "Jaccard";
    case kjoin::SetMetric::kDice: return "Dice";
    case kjoin::SetMetric::kCosine: return "Cosine";
  }
  return "?";
}

}  // namespace

int main() {
  const kjoin::Hierarchy tree = kjoin::MakeFigure1Hierarchy();
  const kjoin::EntityMatcher matcher(tree);
  kjoin::ObjectBuilder builder(matcher, /*multi_mapping=*/false);
  const kjoin::Object s1 = builder.Build(0, {"BurgerKing", "MountainView"});
  const kjoin::Object s3 = builder.Build(1, {"Fastfood", "GoogleHeadquarters"});

  // --- set metrics (§6.3) ------------------------------------------------
  std::printf("SIM(S1, S3) with delta = 0.7 under each set metric:\n");
  for (kjoin::SetMetric metric :
       {kjoin::SetMetric::kJaccard, kjoin::SetMetric::kDice, kjoin::SetMetric::kCosine}) {
    kjoin::KJoinOptions options;
    options.delta = 0.7;
    options.tau = 0.6;
    options.set_metric = metric;
    const kjoin::KJoin join(tree, options);
    std::printf("  %-8s %.4f\n", MetricName(metric), join.ExactSimilarity(s1, s3));
  }

  // --- element metric (§6.2) ---------------------------------------------
  {
    kjoin::KJoinOptions options;
    options.delta = 0.7;
    options.tau = 0.6;
    options.element_metric = kjoin::ElementMetric::kWuPalmer;
    const kjoin::KJoin join(tree, options);
    std::printf("\nWu & Palmer element metric: SIM(S1, S3) = %.4f\n",
                join.ExactSimilarity(s1, s3));
  }

  // --- DAG knowledge base (§6.5) ------------------------------------------
  kjoin::Dag dag;
  const int32_t food = dag.AddNode("Food");
  const int32_t fast = dag.AddNode("Fastfood");
  const int32_t pizza = dag.AddNode("Pizza");
  const int32_t hut = dag.AddNode("PizzaHut");  // two parents -> duplicated
  dag.AddEdge(0, food);
  dag.AddEdge(food, fast);
  dag.AddEdge(food, pizza);
  dag.AddEdge(fast, hut);
  dag.AddEdge(pizza, hut);
  const auto dag_tree = kjoin::ConvertDagToTree(dag);
  if (!dag_tree.has_value()) {
    std::printf("DAG conversion failed\n");
    return 1;
  }
  std::printf("\nDAG with a 2-parent PizzaHut unfolds into %lld tree nodes; label\n"
              "\"PizzaHut\" now maps to %zu nodes (K-Join+ handles the ambiguity):\n",
              static_cast<long long>(dag_tree->num_nodes()),
              dag_tree->NodesWithLabel("PizzaHut").size());

  kjoin::EntityMatcherOptions dag_matcher_options;
  dag_matcher_options.enable_approximate = false;
  const kjoin::EntityMatcher dag_matcher(*dag_tree, dag_matcher_options);
  kjoin::ObjectBuilder dag_builder(dag_matcher, /*multi_mapping=*/true);
  const kjoin::Object a = dag_builder.Build(0, {"PizzaHut", "Fastfood"});
  const kjoin::Object b = dag_builder.Build(1, {"PizzaHut", "Pizza"});

  kjoin::KJoinOptions options;
  options.delta = 0.6;
  options.tau = 0.3;
  options.plus_mode = true;
  const kjoin::KJoin join(*dag_tree, options);
  std::printf("  SIM({PizzaHut, Fastfood}, {PizzaHut, Pizza}) = %.4f\n",
              join.ExactSimilarity(a, b));
  return 0;
}
