// wal_kill_replay — the durability contract, demonstrated the honest
// way: a writer process appends acked batches and dies mid-stream with
// _exit() (no destructors, no flush), and a verifier process recovers
// from snapshot + WAL and proves the result is byte-identical to a
// reference that never crashed.
//
//   ./wal_kill_replay --dir /tmp/kr --mode writer --batches 40 --kill-after 23
//   ./wal_kill_replay --dir /tmp/kr --mode tear      # garbage a partial frame
//   ./wal_kill_replay --dir /tmp/kr --mode verify    # exit 0 iff recovered
//
// The writer records every acked batch number in acked.txt (fsynced
// before the ack is considered observed), so the verifier knows the
// minimum the log must deliver. `tear` appends garbage to the log,
// simulating a crash mid-append; recovery must drop the torn tail and
// keep every acked record. scripts/check.sh --recovery drives all three.
//
// Fault schedules: when built with fault injection (the asan/tsan
// presets), KJOIN_FAULT_SCHEDULE / KJOIN_FAULT_SEED arm seeded
// probabilistic faults for the whole process, e.g.
//
//   KJOIN_FAULT_SCHEDULE=serve/wal_fsync:0.2 KJOIN_FAULT_SEED=7
//   ./wal_kill_replay --dir /tmp/kr --mode writer ...
//
// A writer batch rejected by an injected fault is simply not recorded as
// acked, so the verify contract is unchanged: whatever *was* acked must
// survive.

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/flags.h"
#include "data/benchmark_suite.h"
#include "serve/index_manager.h"
#include "serve/snapshot.h"

namespace {

constexpr int kSeed = 73;

struct Stack {
  kjoin::BenchmarkData data;
  std::shared_ptr<const kjoin::Hierarchy> hierarchy;
  kjoin::PreparedObjects prepared;
  kjoin::KJoinOptions options;
};

// Deterministic: every process (writer, verifier, reference) rebuilds
// the exact same collection and token table from the same seed.
Stack MakeStack(int64_t n) {
  Stack s{kjoin::MakePoiBenchmark(n, kSeed), {}, {}, {}};
  s.hierarchy = std::make_shared<const kjoin::Hierarchy>(std::move(s.data.hierarchy));
  s.prepared = kjoin::BuildObjects(*s.hierarchy, s.data.dataset,
                                   /*multi_mapping=*/true, /*min_phi=*/0.8);
  s.options.delta = 0.8;
  s.options.tau = 0.6;
  s.options.plus_mode = true;
  return s;
}

// Batch `b` (1-based) is a pure function of the seed: two perturbed
// records with fresh ids past the base collection.
std::vector<kjoin::Object> MakeBatch(Stack& stack, int64_t n, int64_t b) {
  std::vector<kjoin::Object> batch;
  for (int i = 0; i < 2; ++i) {
    const int64_t r = (b * 2 + i) % n;
    batch.push_back(stack.prepared.builder->Build(
        static_cast<int32_t>(n + (b - 1) * 2 + i),
        stack.data.dataset.records[r].tokens));
  }
  return batch;
}

bool FileExists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

// The acked manifest: the highest batch number the writer was told was
// durable. fsynced so a crash cannot un-write the claim.
bool WriteManifest(const std::string& path, int64_t acked) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "%lld\n", static_cast<long long>(acked));
  std::fflush(f);
  ::fsync(::fileno(f));
  std::fclose(f);
  return true;
}

int64_t ReadManifest(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return 0;
  long long acked = 0;
  const int got = std::fscanf(f, "%lld", &acked);
  std::fclose(f);
  return got == 1 ? acked : 0;
}

std::string StateBytes(const kjoin::serve::IndexManager& manager) {
  const auto epoch = manager.Acquire();
  kjoin::serve::SnapshotInput input;
  input.index = epoch->index.get();
  input.tokens = epoch->tokens;
  input.synonyms = epoch->synonyms;
  input.durable_seq = epoch->durable_seq;
  return kjoin::serve::SerializeIndexSnapshot(input);
}

int RunWriter(Stack& stack, int64_t n, const std::string& snap, const std::string& wal,
              const std::string& manifest, int64_t batches, int64_t kill_after) {
  std::unique_ptr<kjoin::serve::IndexManager> manager;
  if (FileExists(snap)) {
    auto recovered = kjoin::serve::IndexManager::Recover(snap, wal, nullptr);
    if (!recovered.ok()) {
      std::fprintf(stderr, "recover failed: %s\n", recovered.status().ToString().c_str());
      return 1;
    }
    manager = std::move(*recovered);
  } else {
    manager = std::make_unique<kjoin::serve::IndexManager>(
        stack.hierarchy, stack.options, stack.prepared.objects,
        stack.prepared.builder->TokenTable(), stack.data.dataset.synonyms, nullptr);
    kjoin::Status status = manager->SaveSnapshot(snap);
    if (status.ok()) status = manager->AttachWal(wal);
    if (!status.ok()) {
      std::fprintf(stderr, "setup failed: %s\n", status.ToString().c_str());
      return 1;
    }
  }

  const int64_t start = manager->Acquire()->durable_seq;
  std::printf("writer: resuming at batch %lld, target %lld\n",
              static_cast<long long>(start + 1), static_cast<long long>(batches));
  for (int64_t b = start + 1; b <= batches; ++b) {
    // Under an injected fault schedule an append can fail (kDataLoss) or
    // the manager can be degraded read-only (kUnavailable). Both are the
    // server telling the client "not acked, try again" — so retry the
    // *same* batch until it acks, keeping the acked prefix contiguous
    // (the verifier replays batches 1..durable in order). Anything else
    // is a real bug.
    kjoin::Status acked = manager->InsertBatch(MakeBatch(stack, n, b));
    for (int attempt = 0;
         !acked.ok() && (kjoin::IsDataLoss(acked) || kjoin::IsUnavailable(acked)) &&
         attempt < 500;
         ++attempt) {
      ::usleep(2000);  // give the background probe room to heal the log
      acked = manager->InsertBatch(MakeBatch(stack, n, b));
    }
    if (!acked.ok()) {
      std::fprintf(stderr, "batch %lld rejected: %s\n", static_cast<long long>(b),
                   acked.ToString().c_str());
      return 1;
    }
    if (!WriteManifest(manifest, b)) return 1;
    if (kill_after > 0 && b >= kill_after) {
      std::printf("writer: _exit(7) after acked batch %lld — no flush, no snapshot\n",
                  static_cast<long long>(b));
      std::fflush(stdout);
      ::_exit(7);  // the crash: destructors and the rebuild loop never run
    }
  }
  manager->Flush();
  std::printf("writer: finished cleanly at batch %lld (%lld objects live)\n",
              static_cast<long long>(batches),
              static_cast<long long>(manager->Acquire()->index->num_live()));
  return 0;
}

int RunTear(const std::string& wal) {
  std::FILE* f = std::fopen(wal.c_str(), "ab");
  if (f == nullptr) {
    std::fprintf(stderr, "tear: cannot open %s\n", wal.c_str());
    return 1;
  }
  // A convincing partial frame: plausible CRC/size bytes, garbage body.
  const char torn[] = "\x13\x37\xba\xad\x40\x00\x00\x00\x00\x00\x00\x00torn-mid-append";
  std::fwrite(torn, 1, sizeof(torn) - 1, f);
  std::fclose(f);
  std::printf("tear: appended %zu garbage bytes to %s\n", sizeof(torn) - 1, wal.c_str());
  return 0;
}

int RunVerify(Stack& stack, int64_t n, const std::string& snap, const std::string& wal,
              const std::string& manifest) {
  const int64_t acked = ReadManifest(manifest);
  auto recovered = kjoin::serve::IndexManager::Recover(snap, wal, nullptr);
  if (!recovered.ok()) {
    std::fprintf(stderr, "verify: recover failed: %s\n",
                 recovered.status().ToString().c_str());
    return 1;
  }
  const int64_t durable = (*recovered)->Acquire()->durable_seq;
  if (durable < acked) {
    std::fprintf(stderr, "verify: LOST ACKED DATA — manifest says %lld, log delivered %lld\n",
                 static_cast<long long>(acked), static_cast<long long>(durable));
    return 1;
  }

  // The reference never crashed: same snapshot, same batches, no WAL.
  auto reference = kjoin::serve::IndexManager::LoadFrom(snap, nullptr);
  if (!reference.ok()) {
    std::fprintf(stderr, "verify: reference load failed: %s\n",
                 reference.status().ToString().c_str());
    return 1;
  }
  for (int64_t b = 1; b <= durable; ++b) {
    const kjoin::Status applied = (*reference)->InsertBatch(MakeBatch(stack, n, b));
    if (!applied.ok()) {
      std::fprintf(stderr, "verify: reference batch %lld failed: %s\n",
                   static_cast<long long>(b), applied.ToString().c_str());
      return 1;
    }
  }
  (*reference)->Flush();

  const std::string got = StateBytes(**recovered);
  const std::string want = StateBytes(**reference);
  if (got != want) {
    std::fprintf(stderr, "verify: recovered state differs from the reference (%zu vs %zu bytes)\n",
                 got.size(), want.size());
    return 1;
  }
  std::printf("verify: OK — %lld acked batches recovered, state byte-identical "
              "(%zu snapshot bytes, %lld objects live)\n",
              static_cast<long long>(durable), got.size(),
              static_cast<long long>((*recovered)->Acquire()->index->num_live()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  kjoin::FlagSet flags("wal_kill_replay");
  std::string* dir = flags.String("dir", "/tmp/wal_kill_replay", "working directory (must exist)");
  std::string* mode = flags.String("mode", "writer", "writer | tear | verify");
  int64_t* n = flags.Int("n", 400, "base collection size");
  int64_t* batches = flags.Int("batches", 40, "total batches the writer aims for");
  int64_t* kill_after = flags.Int("kill-after", 0, "writer _exit()s after acking this batch (0 = run to completion)");
  if (!flags.Parse(argc, argv)) return 1;

  // Externally driven fault schedules (KJOIN_FAULT_SCHEDULE /
  // KJOIN_FAULT_SEED) arm the whole process; a no-op when unset or when
  // fault points are compiled out (release builds).
  const kjoin::Status faults = kjoin::fault::EnableFromEnv();
  if (!faults.ok()) {
    std::fprintf(stderr, "%s\n", faults.ToString().c_str());
    return 1;
  }

  const std::string snap = *dir + "/base.snap";
  const std::string wal = *dir + "/log.wal";
  const std::string manifest = *dir + "/acked.txt";

  if (*mode == "tear") return RunTear(wal);
  Stack stack = MakeStack(*n);
  if (*mode == "writer") {
    return RunWriter(stack, *n, snap, wal, manifest, *batches, *kill_after);
  }
  if (*mode == "verify") return RunVerify(stack, *n, snap, wal, manifest);
  std::fprintf(stderr, "unknown --mode %s\n", mode->c_str());
  return 1;
}
