// kjoin_server — the serving stack end to end: snapshot cold start, an
// RCU-swapped live index, and concurrent clients with deadlines and
// admission control.
//
//   ./kjoin_server --n 5000 --clients 4 --queries 50 --snapshot poi.snap \
//       --wal poi.wal
//
// With --snapshot the index is loaded from the file when it exists
// (skipping tokenization, entity matching, signature generation and the
// LCA build) and built-then-saved when it does not, so the second run
// demonstrates the fast cold start. With --wal every accepted write is
// appended and fsynced before it is acked, and startup replays whatever
// the log holds past the snapshot — kill the process mid-run and the
// next run serves every acked batch (docs/serving.md, "Durability").
// While clients are querying, the main thread inserts a batch of new
// records; the epoch swap is visible only as a version bump in the
// responses. Exits with the metrics registry dumped as JSON.
//
// With --shards N (N > 1) the demo serves the same collection from a
// ShardedIndexManager behind a scatter-gather ShardRouter instead: every
// query fans out to all N shards under one shared progressive top-k
// bound (docs/serving.md, "Sharded serving"). The exit metrics JSON then
// carries the per-shard probe/τ-prune counters (router.shard<i>.*), the
// router queue depth, and a sharded.shard<i>.pending_inserts gauge per
// shard;
// --wal uses one log per shard (<wal>.shard-<i>).

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "data/benchmark_suite.h"
#include "serve/index_manager.h"
#include "serve/search_service.h"
#include "serve/shard_router.h"
#include "serve/snapshot.h"

int main(int argc, char** argv) {
  kjoin::FlagSet flags("kjoin_server");
  int64_t* n = flags.Int("n", 5000, "indexed POI records");
  double* delta = flags.Double("delta", 0.8, "element similarity threshold");
  double* tau = flags.Double("tau", 0.6, "object similarity threshold");
  int64_t* clients = flags.Int("clients", 4, "concurrent client threads");
  int64_t* queries = flags.Int("queries", 50, "queries per client");
  int64_t* topk = flags.Int("topk", 3, "top-k per query (0 = threshold search)");
  double* deadline = flags.Double("deadline", 0.1, "per-query deadline in seconds (0 = none)");
  int64_t* max_in_flight = flags.Int("max-in-flight", 64, "admission cap (0 = unbounded)");
  int64_t* insert = flags.Int("insert", 200, "records to insert while clients run");
  int64_t* shards = flags.Int("shards", 1, "serve from N hash shards behind a scatter-gather router");
  std::string* snapshot = flags.String("snapshot", "", "snapshot file: load if present, else build and save");
  std::string* wal = flags.String("wal", "", "write-ahead log: replay on start, append every write");
  if (!flags.Parse(argc, argv)) return 1;

  kjoin::ThreadPool pool(2);  // background lane for epoch rebuilds
  kjoin::MetricsRegistry metrics;

  // The generated workload doubles as the query source; with a snapshot
  // present only the records (not the index) are rebuilt from it.
  kjoin::BenchmarkData data = kjoin::MakePoiBenchmark(*n, /*seed=*/51);
  kjoin::KJoinOptions options;
  options.delta = *delta;
  options.tau = *tau;
  options.plus_mode = true;

  std::unique_ptr<kjoin::serve::IndexManager> manager;
  kjoin::serve::QueryPipeline pipeline;   // snapshot path
  kjoin::PreparedObjects prepared;        // build path
  kjoin::ObjectBuilder* builder = nullptr;
  auto hierarchy = std::make_shared<const kjoin::Hierarchy>(std::move(data.hierarchy));

  // ---- sharded serving demo (--shards N) -------------------------------
  if (*shards > 1) {
    kjoin::WallTimer shard_cold_start;
    prepared = kjoin::BuildObjects(*hierarchy, data.dataset, /*multi_mapping=*/true, *delta);
    builder = prepared.builder.get();
    kjoin::serve::ShardedIndexManager sharded(
        hierarchy, options, prepared.objects, builder->TokenTable(),
        data.dataset.synonyms, static_cast<int>(*shards), &pool, &metrics);
    std::printf("cold start: built %lld objects across %lld shards in %.3fs\n",
                static_cast<long long>(*n), static_cast<long long>(*shards),
                shard_cold_start.ElapsedSeconds());
    if (!wal->empty()) {
      const kjoin::Status attached = sharded.AttachWal(*wal);
      if (!attached.ok()) {
        std::printf("WAL attach failed: %s\n", attached.ToString().c_str());
        return 1;
      }
      std::printf("WAL attached: one log per shard (%s.shard-<i>), %lld objects after replay\n",
                  wal->c_str(), static_cast<long long>(sharded.num_objects()));
    }

    std::vector<std::unique_ptr<kjoin::serve::LocalShard>> backends;
    std::vector<kjoin::serve::ShardBackend*> backend_ptrs;
    for (int s = 0; s < sharded.num_shards(); ++s) {
      backends.push_back(std::make_unique<kjoin::serve::LocalShard>(&sharded, s));
      backend_ptrs.push_back(backends.back().get());
    }
    kjoin::serve::ShardRouterOptions router_options;
    router_options.admission.max_in_flight = static_cast<int>(*max_in_flight);
    router_options.default_deadline_seconds = *deadline;
    kjoin::serve::ShardRouter router(backend_ptrs, &pool, router_options, &metrics);

    const int64_t total = *clients * *queries;
    std::vector<kjoin::serve::QueryRequest> requests(total);
    for (int64_t i = 0; i < total; ++i) {
      std::vector<std::string> tokens = data.dataset.records[(i * 97) % *n].tokens;
      if (!tokens.empty()) tokens.pop_back();
      requests[i].query = builder->Build(-1, tokens);
      requests[i].top_k = static_cast<int32_t>(*topk);
    }

    std::atomic<int64_t> ok{0}, tripped{0}, shed{0}, hits{0};
    std::atomic<int64_t> tightenings{0}, pruned_entries{0}, screened{0};
    kjoin::WallTimer serving;
    std::vector<std::thread> client_threads;
    client_threads.reserve(*clients);
    for (int64_t c = 0; c < *clients; ++c) {
      client_threads.emplace_back([&, c] {
        for (int64_t q = 0; q < *queries; ++q) {
          kjoin::serve::QueryResponse response = router.Search(requests[c * *queries + q]);
          if (response.status.ok()) {
            ok.fetch_add(1, std::memory_order_relaxed);
          } else if (kjoin::IsResourceExhausted(response.status)) {
            shed.fetch_add(1, std::memory_order_relaxed);
          } else {
            tripped.fetch_add(1, std::memory_order_relaxed);
          }
          hits.fetch_add(static_cast<int64_t>(response.hits.size()),
                         std::memory_order_relaxed);
          tightenings.fetch_add(response.stats.bound_tightenings,
                                std::memory_order_relaxed);
          pruned_entries.fetch_add(response.stats.bound_pruned_entries,
                                   std::memory_order_relaxed);
          screened.fetch_add(response.stats.bound_skipped_verifies,
                             std::memory_order_relaxed);
        }
      });
    }

    // A live update racing the clients: the batch is hash-partitioned
    // across the shards, each shard publishes its own epoch.
    if (*insert > 0) {
      std::vector<kjoin::Object> batch;
      batch.reserve(*insert);
      for (int64_t i = 0; i < *insert; ++i) {
        batch.push_back(builder->Build(static_cast<int32_t>(*n + i),
                                       data.dataset.records[i % *n].tokens));
      }
      const kjoin::Status inserted =
          sharded.InsertBatch(std::move(batch), builder->TokenTable());
      if (!inserted.ok()) {
        std::printf("insert rejected: %s\n", inserted.ToString().c_str());
      }
      sharded.Flush();
    }
    for (std::thread& t : client_threads) t.join();

    std::printf("\nserved %lld queries from %lld clients across %d shards in %.3fs\n",
                static_cast<long long>(total), static_cast<long long>(*clients),
                sharded.num_shards(), serving.ElapsedSeconds());
    std::printf("  ok %lld, deadline/cancel %lld, shed %lld, hits %lld\n",
                static_cast<long long>(ok.load()), static_cast<long long>(tripped.load()),
                static_cast<long long>(shed.load()), static_cast<long long>(hits.load()));
    std::printf("  progressive bound: tightened %lld times, pruned %lld posting entries, "
                "length-screened %lld verifications\n",
                static_cast<long long>(tightenings.load()),
                static_cast<long long>(pruned_entries.load()),
                static_cast<long long>(screened.load()));
    // Per-shard write-queue depth gauges land next to the router's
    // per-shard probe/prune counters in the JSON dump.
    for (int s = 0; s < sharded.num_shards(); ++s) {
      metrics.gauge(kjoin::ShardMetricName("sharded", s, "pending_inserts"))
          ->Set(sharded.shard(s)->pending_inserts());
      std::printf("  shard %d: %lld objects, %lld pending inserts\n", s,
                  static_cast<long long>(sharded.shard(s)->Acquire()->index->num_live()),
                  static_cast<long long>(sharded.shard(s)->pending_inserts()));
    }
    std::printf("\nmetrics: %s\n", metrics.ToJson().c_str());
    return 0;
  }

  kjoin::WallTimer cold_start;
  bool loaded_from_snapshot = false;
  if (!snapshot->empty()) {
    auto loaded = kjoin::serve::LoadIndexSnapshot(*snapshot, &metrics);
    if (loaded.ok()) {
      std::printf("cold start: loaded %s (%llu bytes) in %.3fs\n", snapshot->c_str(),
                  static_cast<unsigned long long>(loaded->file_bytes),
                  cold_start.ElapsedSeconds());
      pipeline = kjoin::serve::MakeQueryPipeline(*loaded);
      builder = pipeline.builder.get();
      hierarchy = loaded->hierarchy;  // serve the snapshot's own hierarchy
      manager = std::make_unique<kjoin::serve::IndexManager>(std::move(*loaded), &pool,
                                                             &metrics);
      loaded_from_snapshot = true;
    } else {
      std::printf("cold start: %s — building instead\n",
                  loaded.status().ToString().c_str());
    }
  }
  if (manager == nullptr) {
    prepared = kjoin::BuildObjects(*hierarchy, data.dataset, /*multi_mapping=*/true, *delta);
    builder = prepared.builder.get();
    manager = std::make_unique<kjoin::serve::IndexManager>(
        hierarchy, options, prepared.objects, prepared.builder->TokenTable(),
        data.dataset.synonyms, &pool, &metrics);
    std::printf("cold start: built %lld objects in %.3fs\n", static_cast<long long>(*n),
                cold_start.ElapsedSeconds());
    if (!snapshot->empty()) {
      const kjoin::Status saved = manager->SaveSnapshot(*snapshot);
      if (saved.ok()) {
        std::printf("saved snapshot to %s (rerun to load it)\n", snapshot->c_str());
      } else {
        std::printf("snapshot save failed: %s\n", saved.ToString().c_str());
      }
    }
  }

  if (!wal->empty()) {
    const kjoin::Status attached = manager->AttachWal(*wal);
    if (!attached.ok()) {
      std::printf("WAL attach failed: %s\n", attached.ToString().c_str());
      return 1;
    }
    std::printf("WAL attached: %s (%lld bytes after replay); epoch %lld, %lld objects\n",
                wal->c_str(), static_cast<long long>(manager->wal_size_bytes()),
                static_cast<long long>(manager->version()),
                static_cast<long long>(manager->Acquire()->index->num_live()));
  }

  kjoin::serve::SearchServiceOptions service_options;
  service_options.max_in_flight = static_cast<int>(*max_in_flight);
  service_options.default_deadline_seconds = *deadline;
  kjoin::serve::SearchService service(manager.get(), &pool, service_options, &metrics);

  // Queries are perturbed copies of indexed records; the builder is not
  // thread-safe, so all query objects are built up front.
  const int64_t total = *clients * *queries;
  std::vector<kjoin::serve::QueryRequest> requests(total);
  for (int64_t i = 0; i < total; ++i) {
    std::vector<std::string> tokens = data.dataset.records[(i * 97) % *n].tokens;
    if (!tokens.empty()) tokens.pop_back();
    requests[i].query = builder->Build(-1, tokens);
    requests[i].top_k = static_cast<int32_t>(*topk);
  }

  std::atomic<int64_t> ok{0}, tripped{0}, shed{0}, hits{0};
  std::atomic<int64_t> max_version{0};
  kjoin::WallTimer serving;
  std::vector<std::thread> client_threads;
  client_threads.reserve(*clients);
  for (int64_t c = 0; c < *clients; ++c) {
    client_threads.emplace_back([&, c] {
      for (int64_t q = 0; q < *queries; ++q) {
        kjoin::serve::QueryResponse response = service.Search(requests[c * *queries + q]);
        if (response.status.ok()) {
          ok.fetch_add(1, std::memory_order_relaxed);
        } else if (kjoin::IsResourceExhausted(response.status)) {
          shed.fetch_add(1, std::memory_order_relaxed);
        } else {
          tripped.fetch_add(1, std::memory_order_relaxed);
        }
        hits.fetch_add(static_cast<int64_t>(response.hits.size()), std::memory_order_relaxed);
        int64_t seen = max_version.load(std::memory_order_relaxed);
        while (response.epoch_version > seen &&
               !max_version.compare_exchange_weak(seen, response.epoch_version)) {
        }
      }
    });
  }

  // A live update racing the clients: new records become searchable at
  // the next epoch, readers never block.
  if (*insert > 0) {
    std::vector<kjoin::Object> batch;
    batch.reserve(*insert);
    for (int64_t i = 0; i < *insert; ++i) {
      batch.push_back(builder->Build(static_cast<int32_t>(*n + i),
                                     data.dataset.records[i % *n].tokens));
    }
    const kjoin::Status inserted =
        manager->InsertBatch(std::move(batch), builder->TokenTable());
    if (!inserted.ok()) {
      std::printf("insert rejected: %s\n", inserted.ToString().c_str());
    }
    manager->Flush();
  }
  for (std::thread& t : client_threads) t.join();

  std::printf("\nserved %lld queries from %lld clients in %.3fs (%s)\n",
              static_cast<long long>(total), static_cast<long long>(*clients),
              serving.ElapsedSeconds(), loaded_from_snapshot ? "snapshot" : "built");
  std::printf("  ok %lld, deadline/cancel %lld, shed %lld, hits %lld\n",
              static_cast<long long>(ok.load()), static_cast<long long>(tripped.load()),
              static_cast<long long>(shed.load()), static_cast<long long>(hits.load()));
  std::printf("  epoch: started at 1, clients saw up to %lld, final %lld\n",
              static_cast<long long>(max_version.load()),
              static_cast<long long>(manager->version()));
  std::printf("\nmetrics: %s\n", metrics.ToJson().c_str());
  return 0;
}
