// kjoin_server — the serving stack end to end: snapshot cold start, an
// RCU-swapped live index, and concurrent clients with deadlines and
// admission control.
//
//   ./kjoin_server --n 5000 --clients 4 --queries 50 --snapshot poi.snap \
//       --wal poi.wal
//
// With --snapshot the index is loaded from the file when it exists
// (skipping tokenization, entity matching, signature generation and the
// LCA build) and built-then-saved when it does not, so the second run
// demonstrates the fast cold start. With --wal every accepted write is
// appended and fsynced before it is acked, and startup replays whatever
// the log holds past the snapshot — kill the process mid-run and the
// next run serves every acked batch (docs/serving.md, "Durability").
// While clients are querying, the main thread inserts a batch of new
// records; the epoch swap is visible only as a version bump in the
// responses. Exits with the metrics registry dumped as JSON.
//
// With --shards N (N > 1) the demo serves the same collection from a
// ShardedIndexManager behind a scatter-gather ShardRouter instead: every
// query fans out to all N shards under one shared progressive top-k
// bound (docs/serving.md, "Sharded serving"). The exit metrics JSON then
// carries the per-shard probe/τ-prune counters (router.shard<i>.*), the
// router queue depth, and a sharded.shard<i>.pending_inserts gauge per
// shard;
// --wal uses one log per shard (<wal>.shard-<i>).
//
// With --listen PORT the same sharded stack goes on the network instead
// (docs/serving.md, "Network protocol"): a KJoinServer accepts KJNP
// frames on PORT (0 = ephemeral, printed at startup) with --loops epoll
// event loops, and the process blocks until SIGTERM/SIGINT, which
// triggers the graceful drain — every request read before the signal
// still gets its response. Pair it with a second process:
//
//   ./kjoin_server --n 5000 --listen 7421 &
//   ./kjoin_server --n 5000 --connect 127.0.0.1:7421
//   kill -TERM %1            # graceful drain
//
// The --connect side rebuilds the identical deterministic dataset (same
// --n, same seed), serves it from an in-process router, and checks every
// network response bit-for-bit against the local one — hit indexes and
// f64 similarities must be identical; the wire adds zero numeric drift.
// It then INSERTs a new record over the network and polls (bounded
// retries) until the insert is searchable, proving the write path and
// epoch publication work end to end. Both --n values must match or the
// identity check fails loudly.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "data/benchmark_suite.h"
#include "net/client.h"
#include "net/server.h"
#include "serve/index_manager.h"
#include "serve/search_service.h"
#include "serve/shard_router.h"
#include "serve/snapshot.h"

namespace {

// RequestShutdown is async-signal-safe (one eventfd write), so the
// handler may call it directly.
kjoin::net::KJoinServer* g_server = nullptr;

void HandleSignal(int) {
  if (g_server != nullptr) g_server->RequestShutdown();
}

// The serving stack both network modes build: the deterministic POI
// dataset sharded behind a scatter-gather router. Declaration order is
// teardown order in reverse, which is what the borrow graph needs.
struct ServingStack {
  kjoin::Dataset dataset;
  std::shared_ptr<const kjoin::Hierarchy> hierarchy;
  kjoin::PreparedObjects prepared;
  std::unique_ptr<kjoin::serve::ShardedIndexManager> sharded;
  std::vector<std::unique_ptr<kjoin::serve::LocalShard>> backends;
  std::unique_ptr<kjoin::serve::ShardRouter> router;
};

ServingStack BuildServingStack(int64_t n, const kjoin::KJoinOptions& options, int shards,
                               int max_in_flight, double deadline, kjoin::ThreadPool* pool,
                               kjoin::MetricsRegistry* metrics) {
  ServingStack stack;
  kjoin::BenchmarkData data = kjoin::MakePoiBenchmark(n, /*seed=*/51);
  stack.dataset = std::move(data.dataset);
  stack.hierarchy = std::make_shared<const kjoin::Hierarchy>(std::move(data.hierarchy));
  stack.prepared = kjoin::BuildObjects(*stack.hierarchy, stack.dataset,
                                       /*multi_mapping=*/true, options.delta);
  stack.sharded = std::make_unique<kjoin::serve::ShardedIndexManager>(
      stack.hierarchy, options, stack.prepared.objects, stack.prepared.builder->TokenTable(),
      stack.dataset.synonyms, shards, pool, metrics);
  std::vector<kjoin::serve::ShardBackend*> backend_ptrs;
  for (int s = 0; s < shards; ++s) {
    stack.backends.push_back(
        std::make_unique<kjoin::serve::LocalShard>(stack.sharded.get(), s));
    backend_ptrs.push_back(stack.backends.back().get());
  }
  kjoin::serve::ShardRouterOptions router_options;
  router_options.admission.max_in_flight = max_in_flight;
  router_options.default_deadline_seconds = deadline;
  stack.router = std::make_unique<kjoin::serve::ShardRouter>(backend_ptrs, pool,
                                                             router_options, metrics);
  return stack;
}

std::vector<std::string> QueryTokens(const kjoin::Dataset& dataset, int64_t i) {
  std::vector<std::string> tokens =
      dataset.records[static_cast<size_t>((i * 97) % static_cast<int64_t>(dataset.records.size()))]
          .tokens;
  if (!tokens.empty()) tokens.pop_back();
  return tokens;
}

}  // namespace

int main(int argc, char** argv) {
  kjoin::FlagSet flags("kjoin_server");
  int64_t* n = flags.Int("n", 5000, "indexed POI records");
  double* delta = flags.Double("delta", 0.8, "element similarity threshold");
  double* tau = flags.Double("tau", 0.6, "object similarity threshold");
  int64_t* clients = flags.Int("clients", 4, "concurrent client threads");
  int64_t* queries = flags.Int("queries", 50, "queries per client");
  int64_t* topk = flags.Int("topk", 3, "top-k per query (0 = threshold search)");
  double* deadline = flags.Double("deadline", 0.1, "per-query deadline in seconds (0 = none)");
  int64_t* max_in_flight = flags.Int("max-in-flight", 64, "admission cap (0 = unbounded)");
  int64_t* insert = flags.Int("insert", 200, "records to insert while clients run");
  int64_t* shards = flags.Int("shards", 1, "serve from N hash shards behind a scatter-gather router");
  std::string* snapshot = flags.String("snapshot", "", "snapshot file: load if present, else build and save");
  std::string* wal = flags.String("wal", "", "write-ahead log: replay on start, append every write");
  int64_t* listen = flags.Int("listen", -1, "serve KJNP on this port until SIGTERM (0 = ephemeral)");
  int64_t* loops = flags.Int("loops", 2, "epoll event loops for --listen");
  std::string* connect = flags.String("connect", "", "host:port of a --listen server to exercise");
  if (!flags.Parse(argc, argv)) return 1;

  kjoin::ThreadPool pool(2);  // background lane for epoch rebuilds
  kjoin::MetricsRegistry metrics;

  kjoin::KJoinOptions net_options;
  net_options.delta = *delta;
  net_options.tau = *tau;
  net_options.plus_mode = true;

  // ---- network server (--listen PORT) ----------------------------------
  if (*listen >= 0) {
    kjoin::WallTimer cold;
    const int net_shards = static_cast<int>(*shards > 1 ? *shards : 2);
    ServingStack stack = BuildServingStack(*n, net_options, net_shards,
                                           static_cast<int>(*max_in_flight), *deadline,
                                           &pool, &metrics);
    kjoin::net::ServerOptions server_options;
    server_options.port = static_cast<int>(*listen);
    server_options.num_loops = static_cast<int>(*loops);
    kjoin::net::KJoinServer server(stack.router.get(), stack.sharded.get(),
                                   stack.prepared.builder.get(), &metrics, server_options);
    const kjoin::Status started = server.Start();
    if (!started.ok()) {
      std::printf("listen failed: %s\n", started.ToString().c_str());
      return 1;
    }
    std::printf("cold start: %lld objects across %d shards in %.3fs\n",
                static_cast<long long>(*n), net_shards, cold.ElapsedSeconds());
    std::printf("listening on 127.0.0.1:%d (%lld event loops); SIGTERM drains\n",
                server.port(), static_cast<long long>(*loops));
    std::fflush(stdout);
    g_server = &server;
    std::signal(SIGTERM, HandleSignal);
    std::signal(SIGINT, HandleSignal);
    server.Wait();  // blocks until the signal, then drains
    g_server = nullptr;
    if (server.active_connections() != 0) {
      std::printf("drain left %lld connections open\n",
                  static_cast<long long>(server.active_connections()));
      return 1;
    }
    std::printf("drained cleanly: %lld requests served, 0 connections left\n",
                static_cast<long long>(metrics.counter("net.requests")->value()));
    std::printf("\nmetrics: %s\n", metrics.ToJson().c_str());
    return 0;
  }

  // ---- network client (--connect host:port) ----------------------------
  if (!connect->empty()) {
    const size_t colon = connect->rfind(':');
    if (colon == std::string::npos) {
      std::printf("--connect wants host:port, got %s\n", connect->c_str());
      return 1;
    }
    const std::string host = connect->substr(0, colon);
    const int port = std::atoi(connect->c_str() + colon + 1);
    // The identical deterministic stack, served in-process: the network
    // answers must match it bit for bit.
    ServingStack reference = BuildServingStack(*n, net_options, *shards > 1 ? static_cast<int>(*shards) : 2,
                                               static_cast<int>(*max_in_flight), *deadline,
                                               &pool, &metrics);
    const int64_t total = *clients * *queries;
    std::atomic<int64_t> ok{0}, non_ok{0}, mismatches{0}, transport_errors{0};
    kjoin::WallTimer serving;
    std::vector<std::thread> client_threads;
    client_threads.reserve(*clients);
    for (int64_t c = 0; c < *clients; ++c) {
      client_threads.emplace_back([&, c] {
        kjoin::net::KJoinClient client;
        if (!client.Connect(host, port).ok()) {
          transport_errors.fetch_add(*queries, std::memory_order_relaxed);
          return;
        }
        for (int64_t q = 0; q < *queries; ++q) {
          const int64_t i = c * *queries + q;
          const std::vector<std::string> tokens = QueryTokens(reference.dataset, i);
          kjoin::StatusOr<kjoin::net::NetResponse> got =
              *topk > 0 ? client.TopK(tokens, static_cast<int32_t>(*topk))
                        : client.Search(tokens);
          if (!got.ok()) {
            transport_errors.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          if (got->code != 0) {
            non_ok.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          ok.fetch_add(1, std::memory_order_relaxed);
          kjoin::serve::QueryRequest local;
          local.query = reference.prepared.builder->Build(-1, tokens);
          if (*topk > 0) local.top_k = static_cast<int32_t>(*topk);
          const kjoin::serve::QueryResponse expected = reference.router->Search(local);
          bool identical = expected.status.ok() && got->hits.size() == expected.hits.size();
          for (size_t h = 0; identical && h < expected.hits.size(); ++h) {
            identical = got->hits[h].object_index == expected.hits[h].object_index &&
                        got->hits[h].similarity == expected.hits[h].similarity;
          }
          if (!identical) mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (std::thread& t : client_threads) t.join();
    std::printf("network: %lld queries over %lld connections in %.3fs — "
                "%lld ok, %lld shed/tripped, %lld transport errors\n",
                static_cast<long long>(total), static_cast<long long>(*clients),
                serving.ElapsedSeconds(), static_cast<long long>(ok.load()),
                static_cast<long long>(non_ok.load()),
                static_cast<long long>(transport_errors.load()));
    if (mismatches.load() != 0) {
      std::printf("IDENTITY FAILURE: %lld responses differ from the in-process router "
                  "(check that both sides use the same --n)\n",
                  static_cast<long long>(mismatches.load()));
      return 1;
    }
    std::printf("identity: every OK response bit-identical to the in-process router\n");

    // The write path: INSERT over the network, then poll until the epoch
    // carrying it is published and the record answers its own query.
    kjoin::net::KJoinClient writer;
    if (!writer.Connect(host, port).ok()) {
      std::printf("writer connect failed\n");
      return 1;
    }
    const std::vector<std::string>& inserted_tokens = reference.dataset.records[0].tokens;
    kjoin::StatusOr<kjoin::net::NetResponse> acked =
        writer.Insert({{static_cast<int32_t>(*n), inserted_tokens}});
    if (!acked.ok() || acked->code != 0) {
      std::printf("network insert failed: %s\n",
                  acked.ok() ? acked->message.c_str() : acked.status().ToString().c_str());
      return 1;
    }
    const int32_t new_index = static_cast<int32_t>(acked->objects_after_insert - 1);
    bool visible = false;
    for (int attempt = 0; attempt < 200 && !visible; ++attempt) {
      kjoin::StatusOr<kjoin::net::NetResponse> found = writer.Search(inserted_tokens);
      if (found.ok() && found->code == 0) {
        for (const kjoin::SearchHit& hit : found->hits) {
          if (hit.object_index == new_index) visible = true;
        }
      }
      if (!visible) std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    if (!visible) {
      std::printf("inserted record never became searchable\n");
      return 1;
    }
    std::printf("insert: acked as global index %d, searchable over the network\n", new_index);
    kjoin::StatusOr<kjoin::net::NetResponse> health = writer.Health();
    if (health.ok() && health->code == 0) {
      std::printf("server health: %s\n", health->text.c_str());
    }
    return 0;
  }

  // The generated workload doubles as the query source; with a snapshot
  // present only the records (not the index) are rebuilt from it.
  kjoin::BenchmarkData data = kjoin::MakePoiBenchmark(*n, /*seed=*/51);
  kjoin::KJoinOptions options;
  options.delta = *delta;
  options.tau = *tau;
  options.plus_mode = true;

  std::unique_ptr<kjoin::serve::IndexManager> manager;
  kjoin::serve::QueryPipeline pipeline;   // snapshot path
  kjoin::PreparedObjects prepared;        // build path
  kjoin::ObjectBuilder* builder = nullptr;
  auto hierarchy = std::make_shared<const kjoin::Hierarchy>(std::move(data.hierarchy));

  // ---- sharded serving demo (--shards N) -------------------------------
  if (*shards > 1) {
    kjoin::WallTimer shard_cold_start;
    prepared = kjoin::BuildObjects(*hierarchy, data.dataset, /*multi_mapping=*/true, *delta);
    builder = prepared.builder.get();
    kjoin::serve::ShardedIndexManager sharded(
        hierarchy, options, prepared.objects, builder->TokenTable(),
        data.dataset.synonyms, static_cast<int>(*shards), &pool, &metrics);
    std::printf("cold start: built %lld objects across %lld shards in %.3fs\n",
                static_cast<long long>(*n), static_cast<long long>(*shards),
                shard_cold_start.ElapsedSeconds());
    if (!wal->empty()) {
      const kjoin::Status attached = sharded.AttachWal(*wal);
      if (!attached.ok()) {
        std::printf("WAL attach failed: %s\n", attached.ToString().c_str());
        return 1;
      }
      std::printf("WAL attached: one log per shard (%s.shard-<i>), %lld objects after replay\n",
                  wal->c_str(), static_cast<long long>(sharded.num_objects()));
    }

    std::vector<std::unique_ptr<kjoin::serve::LocalShard>> backends;
    std::vector<kjoin::serve::ShardBackend*> backend_ptrs;
    for (int s = 0; s < sharded.num_shards(); ++s) {
      backends.push_back(std::make_unique<kjoin::serve::LocalShard>(&sharded, s));
      backend_ptrs.push_back(backends.back().get());
    }
    kjoin::serve::ShardRouterOptions router_options;
    router_options.admission.max_in_flight = static_cast<int>(*max_in_flight);
    router_options.default_deadline_seconds = *deadline;
    kjoin::serve::ShardRouter router(backend_ptrs, &pool, router_options, &metrics);

    const int64_t total = *clients * *queries;
    std::vector<kjoin::serve::QueryRequest> requests(total);
    for (int64_t i = 0; i < total; ++i) {
      std::vector<std::string> tokens = data.dataset.records[(i * 97) % *n].tokens;
      if (!tokens.empty()) tokens.pop_back();
      requests[i].query = builder->Build(-1, tokens);
      requests[i].top_k = static_cast<int32_t>(*topk);
    }

    std::atomic<int64_t> ok{0}, tripped{0}, shed{0}, hits{0};
    std::atomic<int64_t> tightenings{0}, pruned_entries{0}, screened{0};
    kjoin::WallTimer serving;
    std::vector<std::thread> client_threads;
    client_threads.reserve(*clients);
    for (int64_t c = 0; c < *clients; ++c) {
      client_threads.emplace_back([&, c] {
        for (int64_t q = 0; q < *queries; ++q) {
          kjoin::serve::QueryResponse response = router.Search(requests[c * *queries + q]);
          if (response.status.ok()) {
            ok.fetch_add(1, std::memory_order_relaxed);
          } else if (kjoin::IsResourceExhausted(response.status)) {
            shed.fetch_add(1, std::memory_order_relaxed);
          } else {
            tripped.fetch_add(1, std::memory_order_relaxed);
          }
          hits.fetch_add(static_cast<int64_t>(response.hits.size()),
                         std::memory_order_relaxed);
          tightenings.fetch_add(response.stats.bound_tightenings,
                                std::memory_order_relaxed);
          pruned_entries.fetch_add(response.stats.bound_pruned_entries,
                                   std::memory_order_relaxed);
          screened.fetch_add(response.stats.bound_skipped_verifies,
                             std::memory_order_relaxed);
        }
      });
    }

    // A live update racing the clients: the batch is hash-partitioned
    // across the shards, each shard publishes its own epoch.
    if (*insert > 0) {
      std::vector<kjoin::Object> batch;
      batch.reserve(*insert);
      for (int64_t i = 0; i < *insert; ++i) {
        batch.push_back(builder->Build(static_cast<int32_t>(*n + i),
                                       data.dataset.records[i % *n].tokens));
      }
      const kjoin::Status inserted =
          sharded.InsertBatch(std::move(batch), builder->TokenTable());
      if (!inserted.ok()) {
        std::printf("insert rejected: %s\n", inserted.ToString().c_str());
      }
      sharded.Flush();
    }
    for (std::thread& t : client_threads) t.join();

    std::printf("\nserved %lld queries from %lld clients across %d shards in %.3fs\n",
                static_cast<long long>(total), static_cast<long long>(*clients),
                sharded.num_shards(), serving.ElapsedSeconds());
    std::printf("  ok %lld, deadline/cancel %lld, shed %lld, hits %lld\n",
                static_cast<long long>(ok.load()), static_cast<long long>(tripped.load()),
                static_cast<long long>(shed.load()), static_cast<long long>(hits.load()));
    std::printf("  progressive bound: tightened %lld times, pruned %lld posting entries, "
                "length-screened %lld verifications\n",
                static_cast<long long>(tightenings.load()),
                static_cast<long long>(pruned_entries.load()),
                static_cast<long long>(screened.load()));
    // Per-shard write-queue depth gauges land next to the router's
    // per-shard probe/prune counters in the JSON dump.
    for (int s = 0; s < sharded.num_shards(); ++s) {
      metrics.gauge(kjoin::ShardMetricName("sharded", s, "pending_inserts"))
          ->Set(sharded.shard(s)->pending_inserts());
      std::printf("  shard %d: %lld objects, %lld pending inserts\n", s,
                  static_cast<long long>(sharded.shard(s)->Acquire()->index->num_live()),
                  static_cast<long long>(sharded.shard(s)->pending_inserts()));
    }
    std::printf("\nmetrics: %s\n", metrics.ToJson().c_str());
    return 0;
  }

  kjoin::WallTimer cold_start;
  bool loaded_from_snapshot = false;
  if (!snapshot->empty()) {
    auto loaded = kjoin::serve::LoadIndexSnapshot(*snapshot, &metrics);
    if (loaded.ok()) {
      std::printf("cold start: loaded %s (%llu bytes) in %.3fs\n", snapshot->c_str(),
                  static_cast<unsigned long long>(loaded->file_bytes),
                  cold_start.ElapsedSeconds());
      pipeline = kjoin::serve::MakeQueryPipeline(*loaded);
      builder = pipeline.builder.get();
      hierarchy = loaded->hierarchy;  // serve the snapshot's own hierarchy
      manager = std::make_unique<kjoin::serve::IndexManager>(std::move(*loaded), &pool,
                                                             &metrics);
      loaded_from_snapshot = true;
    } else {
      std::printf("cold start: %s — building instead\n",
                  loaded.status().ToString().c_str());
    }
  }
  if (manager == nullptr) {
    prepared = kjoin::BuildObjects(*hierarchy, data.dataset, /*multi_mapping=*/true, *delta);
    builder = prepared.builder.get();
    manager = std::make_unique<kjoin::serve::IndexManager>(
        hierarchy, options, prepared.objects, prepared.builder->TokenTable(),
        data.dataset.synonyms, &pool, &metrics);
    std::printf("cold start: built %lld objects in %.3fs\n", static_cast<long long>(*n),
                cold_start.ElapsedSeconds());
    if (!snapshot->empty()) {
      const kjoin::Status saved = manager->SaveSnapshot(*snapshot);
      if (saved.ok()) {
        std::printf("saved snapshot to %s (rerun to load it)\n", snapshot->c_str());
      } else {
        std::printf("snapshot save failed: %s\n", saved.ToString().c_str());
      }
    }
  }

  if (!wal->empty()) {
    const kjoin::Status attached = manager->AttachWal(*wal);
    if (!attached.ok()) {
      std::printf("WAL attach failed: %s\n", attached.ToString().c_str());
      return 1;
    }
    std::printf("WAL attached: %s (%lld bytes after replay); epoch %lld, %lld objects\n",
                wal->c_str(), static_cast<long long>(manager->wal_size_bytes()),
                static_cast<long long>(manager->version()),
                static_cast<long long>(manager->Acquire()->index->num_live()));
  }

  kjoin::serve::SearchServiceOptions service_options;
  service_options.max_in_flight = static_cast<int>(*max_in_flight);
  service_options.default_deadline_seconds = *deadline;
  kjoin::serve::SearchService service(manager.get(), &pool, service_options, &metrics);

  // Queries are perturbed copies of indexed records; the builder is not
  // thread-safe, so all query objects are built up front.
  const int64_t total = *clients * *queries;
  std::vector<kjoin::serve::QueryRequest> requests(total);
  for (int64_t i = 0; i < total; ++i) {
    std::vector<std::string> tokens = data.dataset.records[(i * 97) % *n].tokens;
    if (!tokens.empty()) tokens.pop_back();
    requests[i].query = builder->Build(-1, tokens);
    requests[i].top_k = static_cast<int32_t>(*topk);
  }

  std::atomic<int64_t> ok{0}, tripped{0}, shed{0}, hits{0};
  std::atomic<int64_t> max_version{0};
  kjoin::WallTimer serving;
  std::vector<std::thread> client_threads;
  client_threads.reserve(*clients);
  for (int64_t c = 0; c < *clients; ++c) {
    client_threads.emplace_back([&, c] {
      for (int64_t q = 0; q < *queries; ++q) {
        kjoin::serve::QueryResponse response = service.Search(requests[c * *queries + q]);
        if (response.status.ok()) {
          ok.fetch_add(1, std::memory_order_relaxed);
        } else if (kjoin::IsResourceExhausted(response.status)) {
          shed.fetch_add(1, std::memory_order_relaxed);
        } else {
          tripped.fetch_add(1, std::memory_order_relaxed);
        }
        hits.fetch_add(static_cast<int64_t>(response.hits.size()), std::memory_order_relaxed);
        int64_t seen = max_version.load(std::memory_order_relaxed);
        while (response.epoch_version > seen &&
               !max_version.compare_exchange_weak(seen, response.epoch_version)) {
        }
      }
    });
  }

  // A live update racing the clients: new records become searchable at
  // the next epoch, readers never block.
  if (*insert > 0) {
    std::vector<kjoin::Object> batch;
    batch.reserve(*insert);
    for (int64_t i = 0; i < *insert; ++i) {
      batch.push_back(builder->Build(static_cast<int32_t>(*n + i),
                                     data.dataset.records[i % *n].tokens));
    }
    const kjoin::Status inserted =
        manager->InsertBatch(std::move(batch), builder->TokenTable());
    if (!inserted.ok()) {
      std::printf("insert rejected: %s\n", inserted.ToString().c_str());
    }
    manager->Flush();
  }
  for (std::thread& t : client_threads) t.join();

  std::printf("\nserved %lld queries from %lld clients in %.3fs (%s)\n",
              static_cast<long long>(total), static_cast<long long>(*clients),
              serving.ElapsedSeconds(), loaded_from_snapshot ? "snapshot" : "built");
  std::printf("  ok %lld, deadline/cancel %lld, shed %lld, hits %lld\n",
              static_cast<long long>(ok.load()), static_cast<long long>(tripped.load()),
              static_cast<long long>(shed.load()), static_cast<long long>(hits.load()));
  std::printf("  epoch: started at 1, clients saw up to %lld, final %lld\n",
              static_cast<long long>(max_version.load()),
              static_cast<long long>(manager->version()));
  std::printf("\nmetrics: %s\n", metrics.ToJson().c_str());
  return 0;
}
